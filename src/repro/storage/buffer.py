"""Buffer pool with WAL and careful-writing enforcement.

The buffer pool caches mutable :class:`~repro.storage.page.Page` objects in
front of the :class:`~repro.storage.disk.SimulatedDisk`.  It enforces two
write-ordering disciplines the paper depends on:

* **Write-ahead logging** (section 5): a dirty page may not reach disk until
  the log records that dirtied it are flushed.  The pool calls
  ``wal.flush(up_to_lsn)`` before any page write.

* **Careful writing** (section 5, citing [LT95]): when records are copied
  from a source page to a destination page, the *source* "cannot be written
  to disk until the new page is written to disk", and a page to be
  deallocated "cannot be deallocated until the new page where its contents
  was copied is on disk".  :meth:`BufferPool.add_write_dependency` records a
  *dest-before-source* edge; flushing the source first flushes its pending
  destinations (recursively).  This is what lets MOVE log records carry keys
  only instead of full record contents.

Eviction is LRU over unpinned frames.  Evicting a dirty frame performs a
(dependency- and WAL-respecting) write first, so callers never observe lost
updates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Protocol

from repro.errors import (
    BufferPoolError,
    CarefulWriteViolation,
    PagePinnedError,
)
from repro.perf import PERF
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

#: Module-level alias: PERF.reset() clears counters in place, so the bound
#: object stays valid and the hot paths save an attribute load per event.
_COUNTERS = PERF.counters


class WALHook(Protocol):
    """The slice of the log manager the buffer pool needs."""

    def flush(self, up_to_lsn: int) -> None:
        """Make all log records with LSN <= ``up_to_lsn`` stable."""

    @property
    def flushed_lsn(self) -> int:
        """Largest LSN known to be stable."""


class _NullWAL:
    """Default hook for tests that exercise the pool without a log."""

    flushed_lsn = 0

    def flush(self, up_to_lsn: int) -> None:  # noqa: D102 - trivial
        pass


class _Frame:
    __slots__ = ("page", "dirty", "pins")

    def __init__(self, page: Page):
        self.page = page
        self.dirty = False
        self.pins = 0


class BufferPool:
    """LRU page cache enforcing WAL and careful-writing order."""

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        *,
        wal: WALHook | None = None,
        careful_writing: bool = True,
    ):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be positive")
        self._disk = disk
        self._capacity = capacity
        self._wal: WALHook = wal if wal is not None else _NullWAL()
        self._careful_writing = careful_writing
        #: LRU order: oldest first.  Maps page id -> frame.
        self._frames: OrderedDict[PageId, _Frame] = OrderedDict()
        #: Invariant: either None or the key currently last in ``_frames``.
        #: Lets repeat fetches of the hottest page skip ``move_to_end``.
        self._mru_id: PageId | None = None
        # Bound dict membership test shadowing the `contains` method below:
        # the DES charges a residency-dependent cost per FetchPage, so this
        # runs once per simulated page access.  `_frames` is cleared in
        # place on crash, never rebound, so the bound method stays valid.
        self.contains = self._frames.__contains__
        #: source page id -> set of destination page ids that must be
        #: durable before the source may be written or deallocated.
        self._write_before: dict[PageId, set[PageId]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.page_writes = 0

    # -- configuration -----------------------------------------------------

    def set_wal(self, wal: WALHook) -> None:
        """Attach the log manager after construction (breaks an init cycle)."""
        self._wal = wal

    @property
    def careful_writing(self) -> bool:
        return self._careful_writing

    # -- core access --------------------------------------------------------

    def fetch(self, page_id: PageId, *, pin: bool = False) -> Page:
        """Return the in-pool page object, reading from disk on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            _COUNTERS.buffer_hits += 1
            if page_id != self._mru_id:
                self._frames.move_to_end(page_id)
                self._mru_id = page_id
            else:
                # Already the newest entry; move_to_end would be a no-op.
                _COUNTERS.buffer_mru_hits += 1
        else:
            self.misses += 1
            _COUNTERS.buffer_misses += 1
            page = self._disk.read(page_id)
            frame = self._admit(page)
        if pin:
            frame.pins += 1
        return frame.page

    def put_new(self, page: Page, *, pin: bool = False) -> Page:
        """Register a freshly allocated page that has no stable image yet."""
        if page.page_id in self._frames:
            raise BufferPoolError(f"page {page.page_id} already buffered")
        frame = self._admit(page)
        frame.dirty = True
        if pin:
            frame.pins += 1
        return frame.page

    def pin(self, page_id: PageId) -> None:
        frame = self._require_frame(page_id)
        frame.pins += 1

    def unpin(self, page_id: PageId) -> None:
        frame = self._require_frame(page_id)
        if frame.pins == 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pins -= 1

    def mark_dirty(self, page_id: PageId, lsn: int | None = None) -> None:
        """Mark a buffered page dirty, optionally stamping its page LSN."""
        frame = self._require_frame(page_id)
        frame.dirty = True
        if lsn is not None:
            frame.page.page_lsn = lsn

    def is_dirty(self, page_id: PageId) -> bool:
        return self._require_frame(page_id).dirty

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._frames

    # -- careful writing --------------------------------------------------------

    def add_write_dependency(self, source: PageId, dest: PageId) -> None:
        """Require ``dest`` to be durable before ``source`` is written/freed.

        No-op when careful writing is disabled (callers then log full record
        contents instead, see :mod:`repro.wal.records`).
        """
        if not self._careful_writing:
            return
        if source == dest:
            raise CarefulWriteViolation("a page cannot depend on itself")
        self._write_before.setdefault(source, set()).add(dest)

    def pending_dependencies(self, source: PageId) -> set[PageId]:
        return set(self._write_before.get(source, ()))

    def remove_write_dependency(self, source: PageId, dest: PageId) -> None:
        """Cancel a write-before edge.

        Used when the action that created the edge is *undone* (section
        5.2): once the records are moved back, full contents having been
        logged for the reverse move, neither write order can lose data.
        """
        dests = self._write_before.get(source)
        if dests is not None:
            dests.discard(dest)
            if not dests:
                del self._write_before[source]

    def _clear_dependencies_on(self, dest: PageId) -> None:
        """``dest`` became durable; drop edges pointing at it."""
        empty_sources = []
        for source, dests in self._write_before.items():
            dests.discard(dest)
            if not dests:
                empty_sources.append(source)
        for source in empty_sources:
            del self._write_before[source]

    # -- writing ---------------------------------------------------------------

    def flush_page(self, page_id: PageId) -> None:
        """Write one page to disk, honouring WAL and careful-writing order.

        Pending destination pages are flushed first, recursively.  A
        dependency cycle (impossible under the reorganizer's protocols, but
        conceivable from buggy callers) raises
        :class:`~repro.errors.CarefulWriteViolation`.
        """
        self._flush_page(page_id, in_progress=set())

    def _flush_page(self, page_id: PageId, *, in_progress: set[PageId]) -> None:
        if page_id in in_progress:
            raise CarefulWriteViolation(
                f"careful-writing dependency cycle involving page {page_id}"
            )
        frame = self._frames.get(page_id)
        if frame is None or not frame.dirty:
            # Clean or unbuffered pages are already stable; still clear any
            # edges that point at them so sources can make progress.
            self._clear_dependencies_on(page_id)
            return
        in_progress.add(page_id)
        for dest in sorted(self.pending_dependencies(page_id)):
            self._flush_page(dest, in_progress=in_progress)
        in_progress.discard(page_id)
        if frame.page.page_lsn > self._wal.flushed_lsn:
            self._wal.flush(frame.page.page_lsn)
        else:
            _COUNTERS.wal_flush_skips += 1
        self._disk.write(frame.page)
        frame.dirty = False
        self.page_writes += 1
        self._clear_dependencies_on(page_id)

    def flush_all(self) -> None:
        """Write every dirty page (checkpoint / shutdown helper)."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def force(self, page_ids: list[PageId]) -> None:
        """Force-write specific pages now (pass 3 stable points, §7.3)."""
        for page_id in page_ids:
            self.flush_page(page_id)

    # -- deallocation -------------------------------------------------------------

    def drop(self, page_id: PageId) -> None:
        """Remove a page from the pool as part of deallocation.

        Careful writing: the page's destination pages are made durable
        first, so the copied-out contents cannot be lost.  The caller is
        responsible for returning the id to the
        :class:`~repro.storage.allocator.FreeSpaceMap` (which erases the
        stable image).
        """
        frame = self._frames.get(page_id)
        for dest in sorted(self.pending_dependencies(page_id)):
            self._flush_page(dest, in_progress=set())
        self._write_before.pop(page_id, None)
        if frame is not None:
            if frame.pins > 0:
                raise PagePinnedError(f"cannot drop pinned page {page_id}")
            del self._frames[page_id]
            if page_id == self._mru_id:
                self._mru_id = None

    # -- crash simulation ----------------------------------------------------------

    def crash(self) -> None:
        """Discard all volatile state (buffered pages, dependency edges)."""
        self._frames.clear()
        self._mru_id = None
        self._write_before.clear()

    # -- internals -------------------------------------------------------------

    def _require_frame(self, page_id: PageId) -> _Frame:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not buffered")
        return frame

    def _admit(self, page: Page) -> _Frame:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(page)
        self._frames[page.page_id] = frame
        self._mru_id = page.page_id
        return frame

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    self._flush_page(page_id, in_progress=set())
                del self._frames[page_id]
                if page_id == self._mru_id:
                    self._mru_id = None
                self.evictions += 1
                return
        raise BufferPoolError("all buffer frames are pinned; cannot evict")
