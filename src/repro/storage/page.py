"""In-memory page representations.

The simulated disk stores :class:`Page` objects.  Two concrete kinds exist:

* :class:`LeafPage` — holds the data records themselves.  The paper's tree is
  a *primary* index: "leaf pages contain the data records" (section 2).
* :class:`InternalPage` — holds ``(key, child_page_id)`` entries.  In the
  paper's B+-tree variation "an internal node with n keys has n children"
  (section 2), i.e. each entry's key is the smallest key reachable through
  that child.  Internal pages directly above the leaves are called *base
  pages*; they carry the *low mark* used by pass 3 (section 7.1).

Pages track a ``page_lsn`` — the LSN of the last log record applied to the
page — which the redo pass uses to decide whether a logged action is already
reflected in the stable image (standard physiological redo, [GR93]).

Capacity is counted in records/entries rather than bytes; this keeps the
model simple while preserving everything the reorganization algorithms
depend on (occupancy, ordering, splits, fill factors).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import BTreeError, DuplicateKeyError, KeyNotFoundError

PageId = int

#: Sentinel page id meaning "no page" (e.g. end of a side-pointer chain).
NO_PAGE: PageId = -1


class PageKind(enum.Enum):
    """Discriminates the two page layouts."""

    LEAF = "leaf"
    INTERNAL = "internal"


@dataclass(frozen=True, order=True)
class Record:
    """A data record stored in a leaf page.

    Ordering is by key so records can live in ``bisect``-maintained sorted
    lists.  The payload models the non-key bytes of the record; its length
    contributes to simulated log volume when full record contents must be
    logged (paper section 5).
    """

    key: int
    payload: str = ""


class Page:
    """Common state of both page kinds."""

    kind: PageKind

    def __init__(self, page_id: PageId):
        self.page_id = page_id
        #: LSN of the last log record applied to this page (0 = never logged).
        self.page_lsn: int = 0

    # -- abstract interface -------------------------------------------------

    def clone(self) -> "Page":
        """Deep copy used when the buffer pool writes a stable image."""
        raise NotImplementedError

    @property
    def num_items(self) -> int:
        raise NotImplementedError

    @property
    def capacity(self) -> int:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    @property
    def is_full(self) -> bool:
        return self.num_items >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self.num_items == 0

    def fill_fraction(self) -> float:
        """Occupancy of the page in [0, 1]."""
        return self.num_items / self.capacity

    def free_slots(self) -> int:
        return self.capacity - self.num_items


class LeafPage(Page):
    """A leaf page holding sorted records plus optional side pointers."""

    kind = PageKind.LEAF

    def __init__(self, page_id: PageId, capacity: int):
        super().__init__(page_id)
        if capacity < 1:
            raise ValueError("leaf capacity must be positive")
        self._capacity = capacity
        self._records: list[Record] = []
        #: Parallel list of record keys, kept in lockstep with ``_records``
        #: so in-page search can bisect without a per-probe key() lambda.
        self._keys: list[int] = []
        #: One-way side pointer to the next leaf in key order, or NO_PAGE.
        self.next_leaf: PageId = NO_PAGE
        #: Backward pointer for two-way side-pointer configurations.
        self.prev_leaf: PageId = NO_PAGE

    # -- Page interface -----------------------------------------------------

    def clone(self) -> "LeafPage":
        # Bypass __init__: clone() runs on every simulated disk read/write,
        # and the source page already satisfies the constructor's checks.
        copy = LeafPage.__new__(LeafPage)
        copy.page_id = self.page_id
        copy.page_lsn = self.page_lsn
        copy._capacity = self._capacity
        copy._records = list(self._records)
        copy._keys = list(self._keys)
        copy.next_leaf = self.next_leaf
        copy.prev_leaf = self.prev_leaf
        return copy

    @property
    def num_items(self) -> int:
        return len(self._records)

    @property
    def capacity(self) -> int:
        return self._capacity

    # Direct overrides of the base-class helpers: the generic versions
    # chain two property dispatches per call, and both run on every insert
    # and scan step.
    @property
    def is_full(self) -> bool:
        return len(self._records) >= self._capacity

    @property
    def is_empty(self) -> bool:
        return not self._records

    # -- record operations ----------------------------------------------------

    @property
    def records(self) -> tuple[Record, ...]:
        """Immutable view of the records, in key order."""
        return tuple(self._records)

    def keys(self) -> list[int]:
        return list(self._keys)

    def min_key(self) -> int:
        if not self._keys:
            raise BTreeError(f"leaf page {self.page_id} is empty; no min key")
        return self._keys[0]

    def max_key(self) -> int:
        if not self._keys:
            raise BTreeError(f"leaf page {self.page_id} is empty; no max key")
        return self._keys[-1]

    def _index_of(self, key: int) -> int:
        """Index of ``key`` in the record list, or -1 if absent."""
        keys = self._keys
        i = bisect.bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return i
        return -1

    def contains(self, key: int) -> bool:
        return self._index_of(key) >= 0

    def get(self, key: int) -> Record:
        i = self._index_of(key)
        if i < 0:
            raise KeyNotFoundError(f"key {key} not in leaf page {self.page_id}")
        return self._records[i]

    def find(self, key: int) -> Record | None:
        """The record for ``key`` or None — one probe for contains+get."""
        keys = self._keys
        i = bisect.bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self._records[i]
        return None

    def insert(self, record: Record) -> None:
        """Insert a record, keeping key order.  Duplicates are rejected."""
        if self.is_full:
            raise BTreeError(f"leaf page {self.page_id} is full")
        keys = self._keys
        i = bisect.bisect_left(keys, record.key)
        if i < len(keys) and keys[i] == record.key:
            raise DuplicateKeyError(f"key {record.key} already in page {self.page_id}")
        keys.insert(i, record.key)
        self._records.insert(i, record)

    def delete(self, key: int) -> Record:
        i = self._index_of(key)
        if i < 0:
            raise KeyNotFoundError(f"key {key} not in leaf page {self.page_id}")
        self._keys.pop(i)
        return self._records.pop(i)

    def take_all(self) -> list[Record]:
        """Remove and return every record (used when moving page contents)."""
        records, self._records = self._records, []
        self._keys = []
        return records

    def take_first(self, n: int) -> list[Record]:
        """Remove and return the ``n`` smallest records."""
        taken = self._records[:n]
        del self._records[:n]
        del self._keys[:n]
        return taken

    def extend(self, records: list[Record]) -> None:
        """Append records that are all greater than the current maximum.

        Used by compaction, which always moves records in ascending key
        order; the precondition keeps the page sorted without a re-sort.
        """
        if not records:
            return
        if len(self._records) + len(records) > self._capacity:
            raise BTreeError(f"extend would overflow leaf page {self.page_id}")
        if self._records and records[0].key <= self._records[-1].key:
            raise BTreeError(
                f"extend precondition violated on page {self.page_id}: "
                f"{records[0].key} <= current max {self._records[-1].key}"
            )
        for earlier, later in zip(records, records[1:]):
            if later.key <= earlier.key:
                raise BTreeError("extend records must be strictly ascending")
        self._records.extend(records)
        self._keys.extend(r.key for r in records)

    def replace_all(self, records: list[Record]) -> None:
        """Replace the full record list (used by swaps and recovery redo)."""
        if len(records) > self._capacity:
            raise BTreeError(f"replace_all would overflow leaf page {self.page_id}")
        ordered = sorted(records, key=lambda r: r.key)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.key == earlier.key:
                raise DuplicateKeyError(f"duplicate key {later.key} in replace_all")
        self._records = ordered
        self._keys = [r.key for r in ordered]

    def iter_from(self, key: int) -> Iterator[Record]:
        """Yield records with key >= ``key`` in ascending order."""
        i = bisect.bisect_left(self._keys, key)
        yield from self._records[i:]

    def records_in_range(self, low: int, high: int) -> list[Record]:
        """Records with ``low <= key <= high`` as one slice (range scans)."""
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_right(self._keys, high)
        return self._records[lo:hi]

    def payload_bytes(self) -> int:
        """Total payload size, used to model full-content log volume."""
        return sum(len(r.payload) for r in self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"{self.min_key()}..{self.max_key()}" if self._records else "empty"
        return f"<LeafPage {self.page_id} [{span}] {self.num_items}/{self._capacity}>"


class InternalPage(Page):
    """An internal page of ``(key, child)`` entries; n keys, n children.

    The entry key is the smallest key in the child's subtree.  Base pages
    (internal pages whose children are leaves) additionally carry a *low
    mark*: the smallest key on the page when it was first created (paper
    section 7.1).  Pass 3 uses low marks to track its scan position.
    """

    kind = PageKind.INTERNAL

    def __init__(self, page_id: PageId, capacity: int, *, level: int = 1):
        super().__init__(page_id)
        if capacity < 2:
            raise ValueError("internal capacity must be at least 2")
        self._capacity = capacity
        #: Height above the leaves: base pages are level 1.
        self.level = level
        self._keys: list[int] = []
        self._children: list[PageId] = []
        #: Smallest key on the page when first created; None until set.
        self.low_mark: Optional[int] = None

    # -- Page interface -----------------------------------------------------

    def clone(self) -> "InternalPage":
        # Bypass __init__ for the same reason as LeafPage.clone.
        copy = InternalPage.__new__(InternalPage)
        copy.page_id = self.page_id
        copy.page_lsn = self.page_lsn
        copy._capacity = self._capacity
        copy.level = self.level
        copy._keys = list(self._keys)
        copy._children = list(self._children)
        copy.low_mark = self.low_mark
        return copy

    @property
    def num_items(self) -> int:
        return len(self._keys)

    @property
    def capacity(self) -> int:
        return self._capacity

    # Direct overrides — see LeafPage for why.
    @property
    def is_full(self) -> bool:
        return len(self._keys) >= self._capacity

    @property
    def is_empty(self) -> bool:
        return not self._keys

    # -- entry operations -----------------------------------------------------

    @property
    def entries(self) -> tuple[tuple[int, PageId], ...]:
        return tuple(zip(self._keys, self._children))

    def keys(self) -> list[int]:
        return list(self._keys)

    def children(self) -> list[PageId]:
        return list(self._children)

    def min_key(self) -> int:
        if not self._keys:
            raise BTreeError(f"internal page {self.page_id} is empty; no min key")
        return self._keys[0]

    def child_index_for(self, key: int) -> int:
        """Index of the child whose subtree may contain ``key``.

        This is the rightmost entry with entry-key <= ``key``.  Keys smaller
        than every entry route to the leftmost child (index 0) so searches
        for keys below the tree minimum terminate at a leaf.
        """
        if not self._keys:
            raise BTreeError(f"internal page {self.page_id} is empty")
        i = bisect.bisect_right(self._keys, key) - 1
        return i if i > 0 else 0

    def child_for(self, key: int) -> PageId:
        # Inlined `child_index_for` — one probe per level on every descent.
        keys = self._keys
        if not keys:
            raise BTreeError(f"internal page {self.page_id} is empty")
        i = bisect.bisect_right(keys, key) - 1
        return self._children[i if i > 0 else 0]

    def route_for(self, key: int) -> tuple[int, PageId]:
        """``(min entry key, child for key)`` in one probe.

        The insert descent needs both — the minimum to maintain *entry key
        = minimum of child subtree*, the child to keep descending — and a
        combined lookup halves the per-level call count on the hottest
        path in the tree.
        """
        keys = self._keys
        if not keys:
            raise BTreeError(f"internal page {self.page_id} is empty")
        i = bisect.bisect_right(keys, key) - 1
        return keys[0], self._children[i if i > 0 else 0]

    def index_of_child(self, child: PageId) -> int:
        """Index of ``child`` in the child list, or -1 if absent."""
        try:
            return self._children.index(child)
        except ValueError:
            return -1

    def insert_entry(self, key: int, child: PageId) -> None:
        if self.is_full:
            raise BTreeError(f"internal page {self.page_id} is full")
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            raise DuplicateKeyError(
                f"separator key {key} already in internal page {self.page_id}"
            )
        self._keys.insert(i, key)
        self._children.insert(i, child)
        if self.low_mark is None:
            self.low_mark = self._keys[0]

    def remove_entry_for_child(self, child: PageId) -> tuple[int, PageId]:
        i = self.index_of_child(child)
        if i < 0:
            raise KeyNotFoundError(
                f"child {child} not in internal page {self.page_id}"
            )
        return self._keys.pop(i), self._children.pop(i)

    def remove_entry_at(self, index: int) -> tuple[int, PageId]:
        if not 0 <= index < len(self._keys):
            raise BTreeError(f"entry index {index} out of range")
        return self._keys.pop(index), self._children.pop(index)

    def update_entry(
        self, old_key: int, old_child: PageId, new_key: int, new_child: PageId
    ) -> None:
        """Replace one (key, child) entry; the paper's MODIFY action.

        Used after a reorganization unit moves records: the base page entry
        for a compacted/moved leaf gets a new key and/or pointer (section 5,
        the MODIFY log record).  Matches the exact (key, child) pair — a
        child id can transiently appear under two keys midway through a
        same-base swap, so matching on the child alone is ambiguous.
        """
        i = -1
        for index, (key, child) in enumerate(zip(self._keys, self._children)):
            if key == old_key and child == old_child:
                i = index
                break
        if i < 0:
            raise KeyNotFoundError(
                f"entry ({old_key}, {old_child}) not in page {self.page_id}"
            )
        self._keys.pop(i)
        self._children.pop(i)
        j = bisect.bisect_left(self._keys, new_key)
        if j < len(self._keys) and self._keys[j] == new_key:
            raise DuplicateKeyError(
                f"separator key {new_key} already in internal page {self.page_id}"
            )
        self._keys.insert(j, new_key)
        self._children.insert(j, new_child)

    def set_entries(self, entries: list[tuple[int, PageId]]) -> None:
        """Replace the whole entry list (recovery redo, bulk build)."""
        if len(entries) > self._capacity:
            raise BTreeError(f"set_entries would overflow page {self.page_id}")
        ordered = sorted(entries)
        for (k1, _), (k2, _) in zip(ordered, ordered[1:]):
            if k1 == k2:
                raise DuplicateKeyError(f"duplicate separator key {k1}")
        self._keys = [k for k, _ in ordered]
        self._children = [c for _, c in ordered]
        if self.low_mark is None and self._keys:
            self.low_mark = self._keys[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"{self._keys[0]}..{self._keys[-1]}" if self._keys else "empty"
        return (
            f"<InternalPage {self.page_id} L{self.level} [{span}] "
            f"{self.num_items}/{self._capacity}>"
        )
