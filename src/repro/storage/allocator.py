"""Free-space map: page allocation within disk extents.

The paper assumes "there are also some free pages available in the database,
which are not connected to the B+-tree" (section 2).  The reorganizer's pass
1 consumes such pages for new-place compaction and its pass 3 allocates
internal pages for the new upper levels.

The map keeps, per extent, a sorted list of free page ids.  Sorted order is
what the Find-Free-Space heuristic of section 6.1 needs: *the first empty
page after the largest finished leaf page id L and before the current leaf
C*.  :meth:`FreeSpaceMap.first_free_in_range` answers exactly that query in
O(log n).

Two implementation details keep the map off the profile:

* extents are looked up by bisecting a sorted list of extent start offsets
  instead of scanning every extent;
* each free list carries a *head offset* so allocating the smallest free
  page is O(1) instead of ``list.pop(0)``'s O(n); the consumed prefix is
  compacted away once it outgrows the live tail.

Allocation state is considered stable (it survives crashes); the paper logs
space allocation so that "space which is allocated after the most recent
force-write log record can be deallocated during recovery" (section 7.3).
The write-ahead log layer emits those records; recovery reconciles via
:meth:`free`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import (
    ExtentFullError,
    PageAlreadyFreeError,
    PageNotAllocatedError,
    StorageError,
)
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import PageId

#: Compact a free list's consumed prefix once it exceeds this many slots
#: and the live tail (amortizes the O(n) deletion over O(n) allocations).
_COMPACT_THRESHOLD = 64


@dataclass(frozen=True)
class ExtentLease:
    """An exclusive sub-range ``[start, end)`` of one extent.

    Shards lease disjoint slices of the shared leaf/internal extents so
    their Find-Free-Space targets can never collide: every allocation a
    shard makes goes through its lease, and leases are validated to be
    non-overlapping at grant time.
    """

    extent: str
    start: PageId
    end: PageId

    def contains(self, page_id: PageId) -> bool:
        return self.start <= page_id < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class FreeSpaceMap:
    """Tracks which page ids in each extent are free vs. allocated."""

    def __init__(self, disk: SimulatedDisk, extent_names: list[str]):
        self._disk = disk
        #: Per extent: sorted free page ids; only ``[head:]`` is live.
        self._free: dict[str, list[PageId]] = {}
        self._head: dict[str, int] = {}
        self._extents: dict[str, Extent] = {}
        for name in extent_names:
            extent = disk.extent(name)
            self._extents[name] = extent
            self._free[name] = list(range(extent.start, extent.end))
            self._head[name] = 0
        #: Extent starts, sorted, with the owning name at the same index:
        #: extent_for bisects here instead of scanning every extent.
        by_start = sorted(
            (extent.start, name) for name, extent in self._extents.items()
        )
        self._starts = [start for start, _ in by_start]
        self._names_by_start = [name for _, name in by_start]
        #: Granted per-shard leases, per extent (disjoint by construction).
        self._leases: dict[str, list[ExtentLease]] = {}

    # -- queries ------------------------------------------------------------

    def extent_for(self, page_id: PageId) -> str:
        i = bisect.bisect_right(self._starts, page_id) - 1
        if i >= 0:
            name = self._names_by_start[i]
            if self._extents[name].contains(page_id):
                return name
        raise StorageError(f"page id {page_id} not in any managed extent")

    def is_free(self, page_id: PageId) -> bool:
        name = self.extent_for(page_id)
        free = self._free[name]
        i = bisect.bisect_left(free, page_id, self._head[name])
        return i < len(free) and free[i] == page_id

    def free_count(self, extent_name: str) -> int:
        return len(self._free[extent_name]) - self._head[extent_name]

    def allocated_count(self, extent_name: str) -> int:
        return self._extents[extent_name].size - self.free_count(extent_name)

    def free_page_ids(self, extent_name: str) -> list[PageId]:
        """Sorted free page ids of the extent (copy)."""
        return self._free[extent_name][self._head[extent_name] :]

    def allocated_page_ids(self, extent_name: str) -> list[PageId]:
        """Sorted allocated page ids of the extent."""
        free = set(self.free_page_ids(extent_name))
        extent = self._extents[extent_name]
        return [pid for pid in range(extent.start, extent.end) if pid not in free]

    def first_free_in_range(
        self, extent_name: str, after: PageId, before: PageId
    ) -> PageId | None:
        """Smallest free page id p with ``after < p < before``.

        This is the query behind the paper's empty-page heuristic
        (section 6.1): ``after`` is L, the largest finished leaf page id,
        and ``before`` is C, the page being reorganized.
        """
        free = self._free[extent_name]
        i = bisect.bisect_right(free, after, self._head[extent_name])
        if i < len(free) and free[i] < before:
            return free[i]
        return None

    def first_free(self, extent_name: str) -> PageId | None:
        """Smallest free page id in the extent, or None if full."""
        free = self._free[extent_name]
        head = self._head[extent_name]
        return free[head] if head < len(free) else None

    def first_free_run(
        self,
        extent_name: str,
        length: int,
        *,
        after: PageId | None = None,
        before: PageId | None = None,
    ) -> PageId | None:
        """Start of the first run of ``length`` consecutive free pages with
        ``after < start`` and ``start + length <= before``, or None.

        The vEB placement policy reserves its whole internal-page window
        with one such query so every node of the new upper levels lands at
        a known offset.  Linear in the number of free pages past ``after``
        (each candidate start is visited at most once).
        """
        if length < 1:
            raise ValueError("run length must be >= 1")
        extent = self._extents[extent_name]
        lo = extent.start - 1 if after is None else after
        hi = extent.end if before is None else min(before, extent.end)
        free = self._free[extent_name]
        n = len(free)
        i = bisect.bisect_right(free, lo, self._head[extent_name])
        while i < n and free[i] + length <= hi:
            j = i + length - 1
            if j < n and free[j] == free[i] + length - 1:
                return free[i]
            # A gap breaks the run somewhere in (i, j]: restart just past it.
            k = i + 1
            while k < n and free[k] == free[k - 1] + 1:
                k += 1
            i = k
        return None

    def nearest_free(
        self,
        extent_name: str,
        target: PageId,
        *,
        after: PageId | None = None,
        before: PageId | None = None,
    ) -> PageId | None:
        """Free page nearest to ``target`` with ``after < p < before``.

        Returns ``target`` itself when it is free and in range; ties in
        distance resolve to the smaller page id.  This is the fallback half
        of a placement *preference*: the policy names an exact page, and
        allocation degrades to the closest free page inside the caller's
        lease when that page is taken.
        """
        extent = self._extents[extent_name]
        lo = extent.start - 1 if after is None else after
        hi = extent.end if before is None else min(before, extent.end)
        free = self._free[extent_name]
        head = self._head[extent_name]
        lo_idx = bisect.bisect_right(free, lo, head)
        i = bisect.bisect_left(free, target, head)
        up_idx = max(i, lo_idx)
        up = free[up_idx] if up_idx < len(free) and free[up_idx] < hi else None
        down = None
        if i - 1 >= lo_idx and free[i - 1] < hi:
            down = free[i - 1]
        if up is None:
            return down
        if down is None:
            return up
        return down if target - down <= up - target else up

    # -- leases -------------------------------------------------------------

    def grant_lease(self, extent_name: str, start: PageId, end: PageId) -> ExtentLease:
        """Grant an exclusive ``[start, end)`` slice of ``extent_name``.

        Validates that the slice lies inside the extent and overlaps no
        previously granted lease — this is the static half of the per-shard
        Find-Free-Space arbitration (the dynamic half is that every shard
        allocation goes through :meth:`allocate_in_lease`).
        """
        extent = self._extents[extent_name]
        if not (extent.start <= start < end <= extent.end):
            raise StorageError(
                f"lease [{start}, {end}) outside extent {extent_name!r} "
                f"[{extent.start}, {extent.end})"
            )
        for other in self._leases.get(extent_name, ()):
            if start < other.end and other.start < end:
                raise StorageError(
                    f"lease [{start}, {end}) overlaps existing lease "
                    f"[{other.start}, {other.end}) in extent {extent_name!r}"
                )
        lease = ExtentLease(extent_name, start, end)
        self._leases.setdefault(extent_name, []).append(lease)
        return lease

    def drop_leases(self, extent_name: str | None = None) -> None:
        """Forget granted leases (all extents by default)."""
        if extent_name is None:
            self._leases.clear()
        else:
            self._leases.pop(extent_name, None)

    def first_free_in_lease(self, lease: ExtentLease) -> PageId | None:
        """Smallest free page id within the lease, or None if exhausted."""
        return self.first_free_in_range(lease.extent, lease.start - 1, lease.end)

    def allocate_in_lease(
        self, lease: ExtentLease, page_id: PageId | None = None
    ) -> PageId:
        """Allocate within the lease (smallest free page by default)."""
        if page_id is None:
            page_id = self.first_free_in_lease(lease)
            if page_id is None:
                raise ExtentFullError(
                    f"lease [{lease.start}, {lease.end}) of extent "
                    f"{lease.extent!r} has no free pages"
                )
        elif not lease.contains(page_id):
            raise StorageError(
                f"page {page_id} outside lease [{lease.start}, {lease.end}) "
                f"of extent {lease.extent!r}"
            )
        return self.allocate(lease.extent, page_id)

    # -- mutations ----------------------------------------------------------

    def allocate(self, extent_name: str, page_id: PageId | None = None) -> PageId:
        """Allocate a specific free page, or the smallest free one.

        Returns the allocated page id.  Raises :class:`ExtentFullError` when
        the extent has no free pages, or :class:`PageNotAllocatedError`-style
        errors for invalid explicit requests.
        """
        free = self._free[extent_name]
        head = self._head[extent_name]
        if page_id is None:
            if head >= len(free):
                raise ExtentFullError(f"extent {extent_name!r} has no free pages")
            page_id = free[head]
            self._advance_head(extent_name, head + 1)
            return page_id
        i = bisect.bisect_left(free, page_id, head)
        if i >= len(free) or free[i] != page_id:
            raise StorageError(
                f"page {page_id} is not free in extent {extent_name!r}"
            )
        if i == head:
            self._advance_head(extent_name, head + 1)
        else:
            free.pop(i)
        return page_id

    def free(self, page_id: PageId) -> None:
        """Return a page to the free pool and erase its stable image."""
        name = self.extent_for(page_id)
        free = self._free[name]
        i = bisect.bisect_left(free, page_id, self._head[name])
        if i < len(free) and free[i] == page_id:
            raise PageAlreadyFreeError(f"page {page_id} is already free")
        free.insert(i, page_id)
        self._disk.erase(page_id)

    def mark_allocated(self, page_id: PageId) -> None:
        """Force a page into the allocated state (recovery bootstrap)."""
        name = self.extent_for(page_id)
        free = self._free[name]
        head = self._head[name]
        i = bisect.bisect_left(free, page_id, head)
        if i < len(free) and free[i] == page_id:
            if i == head:
                self._advance_head(name, head + 1)
            else:
                free.pop(i)

    # -- internals ----------------------------------------------------------

    def _advance_head(self, extent_name: str, head: int) -> None:
        free = self._free[extent_name]
        if head > _COMPACT_THRESHOLD and head > len(free) - head:
            del free[:head]
            head = 0
        self._head[extent_name] = head
