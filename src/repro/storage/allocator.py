"""Free-space map: page allocation within disk extents.

The paper assumes "there are also some free pages available in the database,
which are not connected to the B+-tree" (section 2).  The reorganizer's pass
1 consumes such pages for new-place compaction and its pass 3 allocates
internal pages for the new upper levels.

The map keeps, per extent, a sorted list of free page ids.  Sorted order is
what the Find-Free-Space heuristic of section 6.1 needs: *the first empty
page after the largest finished leaf page id L and before the current leaf
C*.  :meth:`FreeSpaceMap.first_free_in_range` answers exactly that query in
O(log n).

Allocation state is considered stable (it survives crashes); the paper logs
space allocation so that "space which is allocated after the most recent
force-write log record can be deallocated during recovery" (section 7.3).
The write-ahead log layer emits those records; recovery reconciles via
:meth:`free`.
"""

from __future__ import annotations

import bisect

from repro.errors import (
    ExtentFullError,
    PageAlreadyFreeError,
    PageNotAllocatedError,
    StorageError,
)
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import PageId


class FreeSpaceMap:
    """Tracks which page ids in each extent are free vs. allocated."""

    def __init__(self, disk: SimulatedDisk, extent_names: list[str]):
        self._disk = disk
        self._free: dict[str, list[PageId]] = {}
        self._extents: dict[str, Extent] = {}
        for name in extent_names:
            extent = disk.extent(name)
            self._extents[name] = extent
            self._free[name] = list(range(extent.start, extent.end))

    # -- queries ------------------------------------------------------------

    def extent_for(self, page_id: PageId) -> str:
        for name, extent in self._extents.items():
            if extent.contains(page_id):
                return name
        raise StorageError(f"page id {page_id} not in any managed extent")

    def is_free(self, page_id: PageId) -> bool:
        name = self.extent_for(page_id)
        free = self._free[name]
        i = bisect.bisect_left(free, page_id)
        return i < len(free) and free[i] == page_id

    def free_count(self, extent_name: str) -> int:
        return len(self._free[extent_name])

    def allocated_count(self, extent_name: str) -> int:
        return self._extents[extent_name].size - len(self._free[extent_name])

    def free_page_ids(self, extent_name: str) -> list[PageId]:
        """Sorted free page ids of the extent (copy)."""
        return list(self._free[extent_name])

    def allocated_page_ids(self, extent_name: str) -> list[PageId]:
        """Sorted allocated page ids of the extent."""
        free = set(self._free[extent_name])
        extent = self._extents[extent_name]
        return [pid for pid in range(extent.start, extent.end) if pid not in free]

    def first_free_in_range(
        self, extent_name: str, after: PageId, before: PageId
    ) -> PageId | None:
        """Smallest free page id p with ``after < p < before``.

        This is the query behind the paper's empty-page heuristic
        (section 6.1): ``after`` is L, the largest finished leaf page id,
        and ``before`` is C, the page being reorganized.
        """
        free = self._free[extent_name]
        i = bisect.bisect_right(free, after)
        if i < len(free) and free[i] < before:
            return free[i]
        return None

    def first_free(self, extent_name: str) -> PageId | None:
        """Smallest free page id in the extent, or None if full."""
        free = self._free[extent_name]
        return free[0] if free else None

    # -- mutations ----------------------------------------------------------

    def allocate(self, extent_name: str, page_id: PageId | None = None) -> PageId:
        """Allocate a specific free page, or the smallest free one.

        Returns the allocated page id.  Raises :class:`ExtentFullError` when
        the extent has no free pages, or :class:`PageNotAllocatedError`-style
        errors for invalid explicit requests.
        """
        free = self._free[extent_name]
        if page_id is None:
            if not free:
                raise ExtentFullError(f"extent {extent_name!r} has no free pages")
            return free.pop(0)
        i = bisect.bisect_left(free, page_id)
        if i >= len(free) or free[i] != page_id:
            raise StorageError(
                f"page {page_id} is not free in extent {extent_name!r}"
            )
        free.pop(i)
        return page_id

    def free(self, page_id: PageId) -> None:
        """Return a page to the free pool and erase its stable image."""
        name = self.extent_for(page_id)
        free = self._free[name]
        i = bisect.bisect_left(free, page_id)
        if i < len(free) and free[i] == page_id:
            raise PageAlreadyFreeError(f"page {page_id} is already free")
        free.insert(i, page_id)
        self._disk.erase(page_id)

    def mark_allocated(self, page_id: PageId) -> None:
        """Force a page into the allocated state (recovery bootstrap)."""
        name = self.extent_for(page_id)
        free = self._free[name]
        i = bisect.bisect_left(free, page_id)
        if i < len(free) and free[i] == page_id:
            free.pop(i)
