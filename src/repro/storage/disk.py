"""Simulated disk: stable page images, extents, and I/O accounting.

The disk is the *stable* half of the storage model.  Pages written here
survive a simulated crash; everything else (buffer pool, lock table,
in-memory tree handles) is volatile and discarded by
:meth:`repro.sim.crash.CrashHarness`.

The paper assumes "the leaf pages and internal pages are in a different part
of the disk or in different disks" (section 6), so the disk is divided into
named **extents**, each a contiguous range of page ids.  Pass 1's
Find-Free-Space heuristic reasons about page ids *within* the leaf extent.

I/O accounting implements the motivation of section 1: a range query over
leaves that are contiguous and in key order costs sequential reads; leaves
scattered by splits cost a seek per jump.  :meth:`SimulatedDisk.read` charges
``1.0`` for a sequential read (page id = previous id + 1) and
``TreeConfig.seek_cost`` otherwise, accumulating into
:attr:`IOStats.read_cost`.

Reads and writes share a single head-position model: an access is
sequential exactly when it targets the page after the previous access,
whatever kind that access was.  Writes charge :attr:`IOStats.write_cost`
under the same rule, so a write interleaved between two reads breaks their
sequentiality just like a real head movement would.
:meth:`SimulatedDisk.read_batch` models one coalesced multi-page request:
the first page is charged through the head model and every further page
costs ``1.0`` — "one seek plus N-1 sequential reads".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageNotAllocatedError, StorageError
from repro.metrics import StatsDeltaMixin
from repro.storage.page import Page, PageId


@dataclass(frozen=True)
class Extent:
    """A named, contiguous range of page ids: [start, start + size)."""

    name: str
    start: PageId
    size: int

    @property
    def end(self) -> PageId:
        """One past the last page id of the extent."""
        return self.start + self.size

    def contains(self, page_id: PageId) -> bool:
        return self.start <= page_id < self.end


@dataclass
class IOStats(StatsDeltaMixin):
    """Mutable I/O counters, resettable between benchmark phases.

    ``seeks``/``sequential_reads`` classify reads; writes are classified by
    ``sequential_writes`` (the remainder, ``writes - sequential_writes``,
    paid full seek cost).  ``batch_reads``/``batch_read_pages`` count
    coalesced :meth:`SimulatedDisk.read_batch` requests and the pages they
    delivered (those pages are included in ``reads`` too).
    """

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    seeks: int = 0
    read_cost: float = 0.0
    sequential_writes: int = 0
    write_cost: float = 0.0
    batch_reads: int = 0
    batch_read_pages: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.sequential_reads = 0
        self.seeks = 0
        self.read_cost = 0.0
        self.sequential_writes = 0
        self.write_cost = 0.0
        self.batch_reads = 0
        self.batch_read_pages = 0


class SimulatedDisk:
    """Array of stable page images divided into extents.

    Reads return *clones* of the stable image and writes store clones, so
    in-memory mutation of a page object never leaks into the stable state
    without an explicit write — exactly the property crash simulation needs.
    """

    def __init__(self, extents: list[Extent], *, seek_cost: float = 10.0):
        if not extents:
            raise StorageError("disk needs at least one extent")
        self._extents: dict[str, Extent] = {}
        cursor = 0
        for extent in extents:
            if extent.name in self._extents:
                raise StorageError(f"duplicate extent name {extent.name!r}")
            if extent.start != cursor:
                raise StorageError(
                    f"extent {extent.name!r} must start at {cursor}, got {extent.start}"
                )
            self._extents[extent.name] = extent
            cursor = extent.end
        self._total_pages = cursor
        self._images: dict[PageId, Page] = {}
        self._seek_cost = seek_cost
        #: Head position — page id of the last access, read *or* write.
        self._head: PageId | None = None
        #: Stable key/value metadata — the paper's "special place on the
        #: disk" holding e.g. the root location (section 7.4).  Writes are
        #: immediately durable (they survive crashes).
        self._meta: dict[str, object] = {}
        self.stats = IOStats()

    # -- stable metadata ---------------------------------------------------

    def set_meta(self, key: str, value: object) -> None:
        """Durably record a metadata value (e.g. the tree root location)."""
        self._meta[key] = value

    def get_meta(self, key: str, default: object = None) -> object:
        return self._meta.get(key, default)

    def del_meta(self, key: str) -> None:
        self._meta.pop(key, None)

    # -- extents --------------------------------------------------------------

    def extent(self, name: str) -> Extent:
        try:
            return self._extents[name]
        except KeyError:
            raise StorageError(f"no extent named {name!r}") from None

    def extent_of(self, page_id: PageId) -> Extent:
        for extent in self._extents.values():
            if extent.contains(page_id):
                return extent
        raise StorageError(f"page id {page_id} is outside every extent")

    @property
    def total_pages(self) -> int:
        return self._total_pages

    def _check_page_id(self, page_id: PageId) -> None:
        if not 0 <= page_id < self._total_pages:
            raise StorageError(
                f"page id {page_id} out of range [0, {self._total_pages})"
            )

    # -- stable image access ----------------------------------------------------

    def has_image(self, page_id: PageId) -> bool:
        """Whether a stable image exists for the page id."""
        return page_id in self._images

    def read(self, page_id: PageId) -> Page:
        """Read the stable image, charging sequential-vs-seek cost."""
        self._check_page_id(page_id)
        image = self._images.get(page_id)
        if image is None:
            raise PageNotAllocatedError(
                f"page {page_id} has no stable image on disk"
            )
        self.stats.reads += 1
        if self._head is not None and page_id == self._head + 1:
            self.stats.sequential_reads += 1
            self.stats.read_cost += 1.0
        else:
            self.stats.seeks += 1
            self.stats.read_cost += self._seek_cost
        self._head = page_id
        return image.clone()

    def read_batch(self, page_ids: list[PageId]) -> list[Page]:
        """Read several stable images as one coalesced request.

        ``page_ids`` must be strictly ascending (one sweep direction — the
        request models a single scheduled pass over the platter).  The
        first page is charged through the shared head model; every further
        page costs ``1.0``, i.e. "one seek plus N-1 sequential reads",
        regardless of gaps — the gap pages stream past the head without a
        repositioning delay.
        """
        if not page_ids:
            return []
        images: list[Page] = []
        previous: PageId | None = None
        for page_id in page_ids:
            if previous is not None and page_id <= previous:
                raise StorageError(
                    f"read_batch page ids must be strictly ascending, got "
                    f"{page_id} after {previous}"
                )
            previous = page_id
            self._check_page_id(page_id)
            image = self._images.get(page_id)
            if image is None:
                raise PageNotAllocatedError(
                    f"page {page_id} has no stable image on disk"
                )
            images.append(image)
        stats = self.stats
        first = page_ids[0]
        if self._head is not None and first == self._head + 1:
            stats.sequential_reads += 1
            stats.read_cost += 1.0
        else:
            stats.seeks += 1
            stats.read_cost += self._seek_cost
        rest = len(page_ids) - 1
        stats.sequential_reads += rest
        stats.read_cost += float(rest)
        stats.reads += len(page_ids)
        stats.batch_reads += 1
        stats.batch_read_pages += len(page_ids)
        self._head = page_ids[-1]
        return [image.clone() for image in images]

    def write(self, page: Page) -> None:
        """Store a clone of ``page`` as the new stable image.

        Writes charge the same sequential-vs-seek model as reads and move
        the shared head, so interleaved writes break read sequentiality.
        """
        self._check_page_id(page.page_id)
        self._images[page.page_id] = page.clone()
        stats = self.stats
        stats.writes += 1
        if self._head is not None and page.page_id == self._head + 1:
            stats.sequential_writes += 1
            stats.write_cost += 1.0
        else:
            stats.write_cost += self._seek_cost
        self._head = page.page_id

    def erase(self, page_id: PageId) -> None:
        """Drop the stable image (page deallocation reached the disk)."""
        self._check_page_id(page_id)
        self._images.pop(page_id, None)

    def reset_read_position(self) -> None:
        """Forget the head position (e.g. between benchmark phases), so the
        next access — read or write — is charged as a seek."""
        self._head = None

    # -- introspection for tests and metrics -------------------------------------

    def stable_page_ids(self) -> list[PageId]:
        return sorted(self._images)

    def peek(self, page_id: PageId) -> Page:
        """Read a stable image *without* charging I/O (test/metrics helper)."""
        image = self._images.get(page_id)
        if image is None:
            raise PageNotAllocatedError(f"page {page_id} has no stable image")
        return image.clone()
