"""Storage facade: disk + free-space map + buffer pool as one object.

:class:`StorageManager` wires the three storage pieces together with the
standard two-extent layout ("leaf" and "internal" — paper section 6 assumes
they live in different parts of the disk) and exposes the small API the
B+-tree and the reorganizer use.
"""

from __future__ import annotations

from repro.config import TreeConfig
from repro.errors import StorageError
from repro.storage.allocator import FreeSpaceMap
from repro.storage.buffer import BufferPool, WALHook
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import InternalPage, LeafPage, Page, PageId, PageKind

LEAF_EXTENT = "leaf"
INTERNAL_EXTENT = "internal"


class StorageManager:
    """Owns a simulated disk, its free-space map, and a buffer pool."""

    def __init__(self, config: TreeConfig | None = None):
        self.config = config or TreeConfig()
        self.disk = SimulatedDisk(
            [
                Extent(LEAF_EXTENT, 0, self.config.leaf_extent_pages),
                Extent(
                    INTERNAL_EXTENT,
                    self.config.leaf_extent_pages,
                    self.config.internal_extent_pages,
                ),
            ],
            seek_cost=self.config.seek_cost,
        )
        self.free_map = FreeSpaceMap(self.disk, [LEAF_EXTENT, INTERNAL_EXTENT])
        self.buffer = BufferPool(
            self.disk,
            self.config.buffer_pool_pages,
            careful_writing=self.config.careful_writing,
            elevator=self.config.elevator_writeback,
            writeback_batch=self.config.writeback_batch,
        )
        # Shadow the `get` and `mark_dirty` methods with the pool's bound
        # equivalents: they are the hottest calls in every workload (one
        # `mark_dirty` per applied log record) and the wrapper frame is pure
        # overhead.  The defs below remain as documentation and for anything
        # holding an unbound reference.
        self.get = self.buffer.fetch
        self.mark_dirty = self.buffer.mark_dirty
        # Same discipline for the optimistic read path: `version_of` runs
        # twice per lock-free page visit (capture + validate).
        self.version_of = self.buffer.version_of

    # -- wiring ---------------------------------------------------------------

    def set_wal(self, wal: WALHook) -> None:
        """Attach the log manager so page writes respect WAL."""
        self.buffer.set_wal(wal)

    # -- allocation --------------------------------------------------------------

    def allocate_leaf(self, page_id: PageId | None = None) -> LeafPage:
        """Allocate a leaf page (optionally a specific free id) and buffer it."""
        pid = self.free_map.allocate(LEAF_EXTENT, page_id)
        page = LeafPage(pid, self.config.leaf_capacity)
        self.buffer.put_new(page)
        return page

    def allocate_internal(
        self, level: int, page_id: PageId | None = None
    ) -> InternalPage:
        """Allocate an internal page (optionally a specific free id).

        Explicit ids come from placement policies (vEB upper levels); the
        default remains first-fit.
        """
        pid = self.free_map.allocate(INTERNAL_EXTENT, page_id)
        page = InternalPage(pid, self.config.internal_capacity, level=level)
        self.buffer.put_new(page)
        return page

    def deallocate(self, page_id: PageId) -> None:
        """Free a page: drop from the pool (honouring careful writing) and
        return it to the free map, erasing its stable image."""
        self.buffer.drop(page_id)
        self.free_map.free(page_id)

    # -- access -----------------------------------------------------------------

    def get(self, page_id: PageId) -> Page:
        return self.buffer.fetch(page_id)

    def get_leaf(self, page_id: PageId) -> LeafPage:
        page = self.buffer.fetch(page_id)
        if page.kind is not PageKind.LEAF:
            raise StorageError(f"page {page_id} is not a leaf page")
        return page  # type: ignore[return-value]

    def get_internal(self, page_id: PageId) -> InternalPage:
        page = self.buffer.fetch(page_id)
        if page.kind is not PageKind.INTERNAL:
            raise StorageError(f"page {page_id} is not an internal page")
        return page  # type: ignore[return-value]

    def mark_dirty(self, page_id: PageId, lsn: int | None = None) -> None:
        self.buffer.mark_dirty(page_id, lsn)

    def version_of(self, page_id: PageId) -> int:
        """Version stamp of a page (see :meth:`BufferPool.version_of`)."""
        return self.buffer.version_of(page_id)

    def prefetch(self, page_ids) -> int:
        """Readahead: batch-admit upcoming pages, gated on the config flag.

        Batches are capped at ``readahead_pages``; with the flag at 0 this
        is a no-op, so callers can request readahead unconditionally.
        """
        limit = self.config.readahead_pages
        if limit <= 0:
            return 0
        return self.buffer.prefetch(page_ids, max_batch=limit)

    # -- durability -----------------------------------------------------------

    def flush_all(self) -> None:
        self.buffer.flush_all()

    def force(self, page_ids: list[PageId]) -> None:
        self.buffer.force(page_ids)

    def crash(self) -> None:
        """Discard volatile storage state (buffer pool contents)."""
        self.buffer.crash()

    # -- rebuilding after a crash -------------------------------------------------

    def rebuild_free_map_from_disk(self) -> None:
        """Resynchronize the free map with the stable images on disk.

        After a crash the free map (volatile in a real system, though we
        keep it in this object) is reconstructed: every page with a stable
        image is allocated, everything else is free.  Recovery then applies
        ALLOC/FREE log records on top (paper section 7.3: space allocated
        after the most recent force-write can be deallocated).
        """
        self.free_map = FreeSpaceMap(self.disk, [LEAF_EXTENT, INTERNAL_EXTENT])
        for pid in self.disk.stable_page_ids():
            self.free_map.mark_allocated(pid)
