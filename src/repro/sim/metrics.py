"""Aggregated metrics over a finished simulation run.

Collects per-transaction scheduler data into the figures benchmark E2
reports: wait times, block counts, RX back-offs, abort counts, throughput,
and the reorganizer's own duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.txn.scheduler import Scheduler
from repro.txn.transaction import Transaction


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


@dataclass
class RunMetrics:
    """Summary of one simulation run's user transactions."""

    user_txns: int = 0
    completed: int = 0
    aborted: int = 0
    blocked_txns: int = 0
    total_blocks: int = 0
    rx_backoffs: int = 0
    deadlock_victims: int = 0
    mean_wait: float = 0.0
    p95_wait: float = 0.0
    max_wait: float = 0.0
    mean_latency: float = 0.0
    p95_latency: float = 0.0
    makespan: float = 0.0
    #: Completed user transactions per unit simulated time.
    throughput: float = 0.0
    reorg_elapsed: float = 0.0
    reorg_result: dict | None = None


def collect_metrics(
    scheduler: Scheduler,
    *,
    reorg_txn: Transaction | None = None,
) -> RunMetrics:
    """Summarize a finished scheduler run.

    ``reorg_txn`` (if given) is excluded from the user-transaction figures
    and reported separately.
    """
    metrics = RunMetrics()
    waits: list[float] = []
    latencies: list[float] = []

    def is_user(txn: Transaction) -> bool:
        return reorg_txn is None or txn is not reorg_txn

    for txn, result in scheduler.completed:
        if not is_user(txn):
            metrics.reorg_elapsed = txn.metrics.elapsed
            metrics.reorg_result = result if isinstance(result, dict) else None
            continue
        metrics.user_txns += 1
        metrics.completed += 1
        waits.append(txn.metrics.wait_time)
        latencies.append(txn.metrics.elapsed)
        metrics.total_blocks += txn.metrics.blocks
        metrics.rx_backoffs += txn.metrics.rx_backoffs
        if txn.metrics.blocks or txn.metrics.rx_backoffs:
            metrics.blocked_txns += 1
    for txn, _exc in scheduler.failed:
        if not is_user(txn):
            continue
        metrics.user_txns += 1
        metrics.aborted += 1
        metrics.deadlock_victims += txn.metrics.deadlocks
        metrics.total_blocks += txn.metrics.blocks
        metrics.rx_backoffs += txn.metrics.rx_backoffs

    metrics.mean_wait = sum(waits) / len(waits) if waits else 0.0
    metrics.p95_wait = _percentile(waits, 0.95)
    metrics.max_wait = max(waits, default=0.0)
    metrics.mean_latency = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    metrics.p95_latency = _percentile(latencies, 0.95)
    metrics.makespan = scheduler.now
    if scheduler.now > 0:
        metrics.throughput = metrics.completed / scheduler.now
    return metrics
