"""Simulation: workloads, crash injection, concurrency driver, metrics."""

from repro.sim.checkpointer import checkpointer
from repro.sim.churn import (
    ChurnResult,
    ChurnSetup,
    plan_churn,
    run_churn_experiment,
    scan_digest,
)
from repro.sim.crash import (
    CrashRunResult,
    LogCrashInjector,
    count_completed_units,
    crash_recover,
    run_reorg_with_crash,
)
from repro.sim.driver import ExperimentSetup, prepare_database, run_concurrent_experiment
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.workload import (
    KeyPicker,
    PlannedTxn,
    WorkloadConfig,
    build_sparse_tree,
    plan_workload,
    transaction_generator,
)

__all__ = [
    "ChurnResult",
    "ChurnSetup",
    "CrashRunResult",
    "ExperimentSetup",
    "KeyPicker",
    "LogCrashInjector",
    "PlannedTxn",
    "RunMetrics",
    "WorkloadConfig",
    "build_sparse_tree",
    "checkpointer",
    "collect_metrics",
    "count_completed_units",
    "crash_recover",
    "plan_churn",
    "plan_workload",
    "prepare_database",
    "run_churn_experiment",
    "run_concurrent_experiment",
    "run_reorg_with_crash",
    "scan_digest",
]
