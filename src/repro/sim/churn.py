"""Sustained insert/delete churn under an optional auto-reorg daemon.

The experiment behind the ``churn_daemon`` bench workload: a bulk-loaded
tree takes a long stream of interleaved inserts (new keys between
existing ones — every one a potential split) and deletes (thinning the
leaves), as DES updater transactions under the section 4.1.3 protocol.
Splits scatter newly allocated leaves far from their key-order
neighbours, so the cold range-scan cost model
(:func:`repro.btree.stats.measure_range_scan`) degrades as churn
accumulates.  With a :class:`repro.reorg.daemon.ReorgDaemon` watching the
live fragmentation metrics, the paper's three-pass reorganization runs
*concurrently with the churn* whenever fragmentation crosses the
threshold, repacking and re-sequencing the leaves — the scan cost stays
roughly flat where the daemon-off run keeps degrading.

Everything is seeded and discrete-event-driven, so both cells are exactly
reproducible.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.btree.stats import measure_range_scan
from repro.config import DaemonConfig, ReorgConfig, TreeConfig
from repro.db import Database
from repro.btree.protocols import updater_delete, updater_insert
from repro.reorg.daemon import DaemonStats, ReorgDaemon
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


@dataclass(frozen=True)
class ChurnSetup:
    """Shape of one churn cell (daemon on and off share one setup).

    The tree is bulk loaded with ``n_records`` even keys at full fill;
    churn then issues ``n_ops`` updater transactions, each op an insert
    of an unused *odd* key (always between two existing keys, so full
    leaves split) or a delete of a random live key, one arrival every
    ``mean_interarrival`` of simulated time.
    """

    tree_config: TreeConfig = field(default_factory=TreeConfig)
    reorg_config: ReorgConfig = field(default_factory=ReorgConfig)
    daemon_config: DaemonConfig = field(default_factory=DaemonConfig)
    n_records: int = 3000
    n_ops: int = 3000
    insert_fraction: float = 0.5
    mean_interarrival: float = 1.0
    io_time: float = 0.2
    hit_time: float = 0.01
    payload_width: int = 16
    seed: int = 11
    unit_pause: float = 0.0
    scan_pause: float = 0.0
    op_duration: float = 0.0

    @property
    def horizon(self) -> float:
        """Daemon poll horizon: a hair past the last churn arrival."""
        return (self.n_ops + 2) * self.mean_interarrival


@dataclass
class ChurnResult:
    """One churn cell's outcome."""

    initial_cost: float
    final_cost: float
    final_records: int
    final_fill: float
    leaf_splits: int
    absorbed_inserts: int
    daemon: DaemonStats | None
    history: list[tuple[float, str, str]]
    reorgs: int
    #: md5 over the final tree's (key, value) stream — the daemon must
    #: never change *what* the tree holds, only where it lives on disk,
    #: so the on and off cells of one setup produce equal digests.
    final_digest: str = ""

    @property
    def degradation(self) -> float:
        """Final / initial cold range-scan read cost."""
        return self.final_cost / self.initial_cost if self.initial_cost else 1.0


def plan_churn(setup: ChurnSetup) -> list[tuple[float, str, int]]:
    """Deterministic (arrival, op, key) schedule for one churn cell.

    The plan tracks the live key set as it goes, so every delete names a
    key that is present when ops apply in arrival order, and every insert
    names an odd key never used before.
    """
    rng = random.Random(setup.seed)
    alive = [2 * k for k in range(setup.n_records)]
    unused_odd = [2 * k + 1 for k in range(setup.n_records)]
    rng.shuffle(unused_odd)
    plan: list[tuple[float, str, int]] = []
    for i in range(setup.n_ops):
        arrival = (i + 1) * setup.mean_interarrival
        if unused_odd and (
            not alive or rng.random() < setup.insert_fraction
        ):
            key = unused_odd.pop()
            alive.append(key)
            plan.append((arrival, "insert", key))
        else:
            idx = rng.randrange(len(alive))
            alive[idx], alive[-1] = alive[-1], alive[idx]
            plan.append((arrival, "delete", alive.pop()))
    return plan


def scan_digest(records) -> str:
    """Order-sensitive digest of an iterable of records."""
    h = hashlib.md5()
    for record in records:
        h.update(f"{record.key}:{record.payload};".encode())
    return h.hexdigest()


def run_churn_experiment(
    setup: ChurnSetup, *, daemon: bool
) -> ChurnResult:
    """Run one churn cell; ``daemon`` switches the auto-reorg process on."""
    db = Database(setup.tree_config)
    payload = "x" * setup.payload_width
    tree = db.bulk_load_tree(
        [Record(2 * k, payload) for k in range(setup.n_records)],
        leaf_fill=1.0,
    )
    db.flush()
    span = 2 * setup.n_records
    initial_cost = measure_range_scan(tree, 0, span).read_cost

    frag = db.frag_stats()
    frag.sync_from_tree(tree)
    scheduler = Scheduler(
        db.locks,
        store=db.store,
        log=db.log,
        io_time=setup.io_time,
        hit_time=setup.hit_time,
    )
    for i, (arrival, op, key) in enumerate(plan_churn(setup)):
        if op == "insert":
            gen = updater_insert(db, "primary", Record(key, payload))
        else:
            gen = updater_delete(db, "primary", key)
        scheduler.spawn(gen, name=f"churn-{i}", at=arrival)

    reorg_daemon: ReorgDaemon | None = None
    if daemon:
        reorg_daemon = ReorgDaemon.for_database(
            db,
            setup.daemon_config,
            setup.reorg_config,
            unit_pause=setup.unit_pause,
            scan_pause=setup.scan_pause,
            op_duration=setup.op_duration,
        )
        reorg_daemon.spawn(scheduler, horizon=setup.horizon)

    scheduler.run()
    if scheduler.failed:
        txn, error = scheduler.failed[0]
        raise RuntimeError(f"churn transaction {txn.name} failed: {error!r}")

    db.flush()
    tree = db.tree()
    final_cost = measure_range_scan(tree, 0, span).read_cost
    frag.sync_from_tree(tree)
    return ChurnResult(
        initial_cost=initial_cost,
        final_cost=final_cost,
        final_records=frag.records,
        final_fill=frag.fill_factor,
        leaf_splits=frag.leaf_splits,
        absorbed_inserts=frag.absorbed_inserts,
        daemon=reorg_daemon.stats if reorg_daemon is not None else None,
        history=reorg_daemon.history if reorg_daemon is not None else [],
        reorgs=frag.reorgs_triggered,
        final_digest=scan_digest(tree.items()),
    )
