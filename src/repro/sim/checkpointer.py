"""A background checkpointer process for the discrete-event scheduler.

Takes sharp checkpoints at a fixed simulated-time cadence while the
workload and the reorganizer run.  Checkpoints capture the paper's system
state — the reorg progress table (section 5), the pass-3 stable key, side
file and reorganization bit (sections 7.2-7.3) — so a crash at any moment
bounds redo to the last checkpoint interval.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.db import Database
from repro.txn.ops import Call, Think


def checkpointer(
    db: Database,
    *,
    interval: float,
    rounds: int | None = None,
) -> Generator[Any, Any, int]:
    """Checkpoint every ``interval`` simulated time units.

    Runs for ``rounds`` checkpoints (None = until the simulation drains it
    by having nothing else scheduled — give it a finite count in tests).
    Returns the number of checkpoints taken.
    """
    taken = 0
    while rounds is None or taken < rounds:
        yield Think(interval)
        yield Call(db.checkpoint)
        taken += 1
    return taken
