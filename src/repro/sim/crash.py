"""Crash injection: fail the system at a chosen point and recover it.

The harness provides deterministic crash windows for the recovery
experiments (E3) and the forward-recovery tests:

* :class:`LogCrashInjector` — raise :class:`~repro.errors.CrashPoint` after
  the N-th log append, optionally flushing the log on every append so the
  whole pre-crash prefix is stable (the interesting regime for forward
  recovery: maximum observable progress, crash at an arbitrary boundary).
* :func:`crash_recover` — the standard sequence: drop volatile state,
  run redo + undo, return the report.
* :func:`run_reorg_with_crash` — run a reorganization until the injector
  fires, then crash, recover, and forward-recover; returns a
  :class:`CrashRunResult` describing how much work survived.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer, ReorgReport
from repro.wal.log import LogManager
from repro.wal.records import LogRecord, ReorgEndRecord
from repro.wal.recovery import RecoveryReport


class LogCrashInjector:
    """Context manager that crashes after a fixed number of log appends."""

    def __init__(
        self,
        log: LogManager,
        *,
        after_records: int,
        flush_each: bool = True,
        label: str = "injected",
    ):
        self.log = log
        self.after_records = after_records
        self.flush_each = flush_each
        self.label = label
        self.appends_seen = 0
        self.fired = False
        self._original_append = None

    def __enter__(self) -> "LogCrashInjector":
        self._original_append = self.log.append

        def crashing_append(record: LogRecord) -> int:
            lsn = self._original_append(record)
            if self.flush_each:
                self.log.flush()
            self.appends_seen += 1
            if self.appends_seen >= self.after_records and not self.fired:
                self.fired = True
                raise CrashPoint(self.label)
            return lsn

        self.log.append = crashing_append  # type: ignore[method-assign]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.log.append = self._original_append  # type: ignore[method-assign]


def crash_recover(db: Database, *, undo: bool = True) -> RecoveryReport:
    """Crash the database and run standard recovery."""
    db.crash()
    return db.recover(undo=undo)


@dataclass
class CrashRunResult:
    """What happened across one crash-interrupted reorganization."""

    crashed: bool
    appends_before_crash: int
    recovery: RecoveryReport | None
    forward: ReorgReport | None
    #: Reorg units completed before the crash (END records in the log).
    units_completed_before: int
    #: Units completed in total after forward recovery resumed/finished.
    units_completed_after: int


def count_completed_units(log: LogManager) -> int:
    return sum(1 for r in log.records_from(1) if isinstance(r, ReorgEndRecord))


def run_reorg_with_crash(
    db: Database,
    tree_name: str,
    config: ReorgConfig,
    *,
    crash_after_records: int,
    resume: bool = True,
) -> CrashRunResult:
    """Run a full reorganization, crash it mid-flight, recover forward.

    ``crash_after_records`` counts log appends from the start of the
    reorganization.  If the reorganization finishes before the injector
    fires, the result reports ``crashed=False``.
    """
    tree = db.tree(tree_name)
    reorg = Reorganizer(db, tree, config)
    injector = LogCrashInjector(db.log, after_records=crash_after_records)
    crashed = False
    try:
        with injector:
            reorg.run()
    except CrashPoint:
        crashed = True
    if not crashed:
        return CrashRunResult(
            crashed=False,
            appends_before_crash=injector.appends_seen,
            recovery=None,
            forward=None,
            units_completed_before=count_completed_units(db.log),
            units_completed_after=count_completed_units(db.log),
        )
    before_units = count_completed_units(db.log)
    recovery = crash_recover(db)
    forward = None
    if resume:
        tree = db.tree(tree_name)
        reorg = Reorganizer(db, tree, config)
        forward = reorg.forward_recover(recovery)
        if forward.switch is None:
            # The crash hit pass 1/2: the interrupted unit is finished;
            # now complete the remaining reorganization from LK onwards.
            reorg.run()
    return CrashRunResult(
        crashed=True,
        appends_before_crash=injector.appends_seen,
        recovery=recovery,
        forward=forward,
        units_completed_before=before_units,
        units_completed_after=count_completed_units(db.log),
    )
