"""Simulation driver: user transactions concurrent with a reorganizer.

Runs one experiment cell of E2: a planned workload of readers/updaters
interleaved (on the deterministic scheduler) with a background
reorganization — either the paper's protocol or the Smith-style baseline —
and returns the aggregated :class:`~repro.sim.metrics.RunMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.workload import (
    WorkloadConfig,
    build_sparse_tree,
    plan_workload,
    transaction_generator,
)
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import Transaction


@dataclass
class ExperimentSetup:
    """Everything one concurrency run needs."""

    tree_config: TreeConfig
    reorg_config: ReorgConfig
    workload: WorkloadConfig
    n_records: int = 2000
    fill_after: float = 0.3
    io_time: float = 0.2
    hit_time: float = 0.01
    reorg_start: float = 0.0
    unit_pause: float = 0.05
    scan_pause: float = 0.02
    #: Time each unit's record movement takes (RX locks held); the Smith
    #: baseline uses the same value for its whole-file-locked operations.
    op_duration: float = 0.3


def prepare_database(setup: ExperimentSetup) -> Database:
    db = Database(setup.tree_config)
    build_sparse_tree(
        db,
        n_records=setup.n_records,
        fill_after=setup.fill_after,
        seed=setup.workload.seed,
    )
    db.flush()
    db.checkpoint()
    return db


def run_concurrent_experiment(
    setup: ExperimentSetup,
    *,
    reorganizer: str = "paper",
    tree_name: str = "primary",
) -> tuple[Database, RunMetrics]:
    """Run workload + reorganizer; ``reorganizer`` is "paper", "smith90"
    or "none" (workload alone, the contention-free baseline)."""
    db = prepare_database(setup)
    scheduler = Scheduler(
        db.locks,
        store=db.store,
        log=db.log,
        io_time=setup.io_time,
        hit_time=setup.hit_time,
    )
    reorg_txn: Transaction | None = None
    if reorganizer == "paper":
        protocol = ReorgProtocol(
            db,
            tree_name,
            setup.reorg_config,
            unit_pause=setup.unit_pause,
            scan_pause=setup.scan_pause,
            op_duration=setup.op_duration,
        )
        protocol.abort_hook = lambda victims: [
            scheduler.abort_transaction(v, "old-tree drain timeout")
            for v in victims
        ]
        reorg_txn = scheduler.spawn(
            full_reorganization(protocol),
            name="reorganizer",
            at=setup.reorg_start,
            is_reorganizer=True,
        )
    elif reorganizer == "smith90":
        from repro.baseline.smith90 import Smith90Protocol

        protocol = Smith90Protocol(
            db, tree_name, setup.reorg_config,
            op_pause=setup.unit_pause, op_duration=setup.op_duration,
        )
        reorg_txn = scheduler.spawn(
            protocol.run(),
            name="smith90-reorganizer",
            at=setup.reorg_start,
            is_reorganizer=True,
        )
    elif reorganizer != "none":
        raise ValueError(f"unknown reorganizer {reorganizer!r}")

    for index, plan in enumerate(plan_workload(setup.workload)):
        scheduler.spawn(
            transaction_generator(db, tree_name, plan, setup.workload.think),
            name=f"{plan.kind}-{index}",
            at=plan.arrival,
        )
    scheduler.run()
    metrics = collect_metrics(scheduler, reorg_txn=reorg_txn)
    return db, metrics
