"""Workload generation: key distributions and user-transaction streams.

Provides the mixes the evaluation needs:

* **sparse-tree builders** — bulk-load full, then delete down to a target
  fill factor f1 (uniformly or in clustered runs), the paper's setting of
  "a large portion of many leaf pages is unused";
* **transaction streams** — reader point lookups, range scans, and updater
  inserts/deletes over configurable key distributions (uniform or Zipf),
  with Poisson-like arrivals, for the concurrency experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.btree.protocols import (
    reader_range_scan,
    reader_search,
    updater_delete,
    updater_insert,
)
from repro.db import Database
from repro.storage.page import Record


def build_sparse_tree(
    db: Database,
    *,
    n_records: int,
    fill_after: float,
    name: str = "primary",
    payload: str = "x" * 16,
    clustered: bool = False,
    internal_fill: float = 1.0,
    seed: int = 7,
):
    """Bulk-load a full tree, then delete records down to ``fill_after``.

    ``clustered`` deletes contiguous key runs (modelling range deletes),
    otherwise deletions are uniform (the classic sparse-tree shape).
    Returns the tree.
    """
    if not 0.0 < fill_after <= 1.0:
        raise ValueError("fill_after must be in (0, 1]")
    records = [Record(k, payload) for k in range(n_records)]
    tree = db.bulk_load_tree(
        records, name=name, leaf_fill=1.0, internal_fill=internal_fill
    )
    rng = random.Random(seed)
    n_delete = int(n_records * (1.0 - fill_after))
    if clustered:
        victims: list[int] = []
        keys = list(range(n_records))
        run = max(4, n_records // 50)
        while len(victims) < n_delete:
            start = rng.randrange(0, n_records - run)
            for key in range(start, start + run):
                if tree.search(key) is not None and key not in victims:
                    victims.append(key)
                    if len(victims) >= n_delete:
                        break
        del keys
    else:
        victims = rng.sample(range(n_records), n_delete)
    # Victims are distinct and chosen before any deletion, so each is
    # still present here; delete directly rather than re-descending with a
    # search first.
    for key in victims:
        tree.delete(key)
    return tree


@dataclass
class WorkloadConfig:
    """Shape of a concurrent user-transaction stream."""

    n_transactions: int = 100
    #: Fractions of each kind; must sum to 1.
    read_fraction: float = 0.6
    scan_fraction: float = 0.1
    insert_fraction: float = 0.15
    delete_fraction: float = 0.15
    key_space: int = 1000
    scan_width: int = 50
    #: Mean inter-arrival time (exponential).
    mean_interarrival: float = 0.5
    #: Think time inside each transaction (holding its locks).
    think: float = 0.1
    #: Zipf skew (0 = uniform); higher concentrates access on low keys.
    zipf_theta: float = 0.0
    seed: int = 11

    def __post_init__(self) -> None:
        total = (
            self.read_fraction
            + self.scan_fraction
            + self.insert_fraction
            + self.delete_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {total}")


@dataclass
class PlannedTxn:
    """One user transaction's script: kind, key(s), arrival time."""

    kind: str
    key: int
    arrival: float
    high: int = 0


class KeyPicker:
    """Uniform or Zipf-like key selection over [0, key_space)."""

    def __init__(self, key_space: int, theta: float, rng: random.Random):
        self.key_space = key_space
        self.theta = theta
        self.rng = rng
        if theta > 0:
            weights = [1.0 / ((rank + 1) ** theta) for rank in range(key_space)]
            total = sum(weights)
            self._cdf = []
            acc = 0.0
            for weight in weights:
                acc += weight / total
                self._cdf.append(acc)
        else:
            self._cdf = None

    def pick(self) -> int:
        if self._cdf is None:
            return self.rng.randrange(self.key_space)
        import bisect

        return bisect.bisect_left(self._cdf, self.rng.random())


def plan_workload(config: WorkloadConfig) -> list[PlannedTxn]:
    """Deterministically expand a config into a transaction schedule."""
    rng = random.Random(config.seed)
    picker = KeyPicker(config.key_space, config.zipf_theta, rng)
    plans: list[PlannedTxn] = []
    clock = 0.0
    for _ in range(config.n_transactions):
        clock += rng.expovariate(1.0 / config.mean_interarrival)
        roll = rng.random()
        key = picker.pick()
        if roll < config.read_fraction:
            kind = "read"
        elif roll < config.read_fraction + config.scan_fraction:
            kind = "scan"
        elif roll < (
            config.read_fraction
            + config.scan_fraction
            + config.insert_fraction
        ):
            kind = "insert"
        else:
            kind = "delete"
        plans.append(
            PlannedTxn(
                kind=kind,
                key=key,
                arrival=clock,
                high=min(key + config.scan_width, config.key_space - 1),
            )
        )
    return plans


def transaction_generator(db: Database, tree_name: str, plan: PlannedTxn, think: float):
    """Materialize one planned transaction as a protocol generator."""
    if plan.kind == "read":
        return reader_search(db, tree_name, plan.key, think=think)
    if plan.kind == "scan":
        return reader_range_scan(
            db, tree_name, plan.key, plan.high, think_per_page=think / 4
        )
    if plan.kind == "insert":
        return updater_insert(
            db, tree_name, Record(plan.key, "w"), think=think
        )
    if plan.kind == "delete":
        return updater_delete(db, tree_name, plan.key, think=think)
    raise ValueError(f"unknown transaction kind {plan.kind!r}")
