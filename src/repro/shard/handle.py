"""Shard handles: one Database-shaped view per shard.

A :class:`ShardHandle` duck-types the slice of
:class:`repro.db.Database` that the tree protocols, the reorganizer
(:class:`~repro.reorg.protocols.ReorgProtocol`,
:class:`~repro.reorg.shrink.TreeShrinker`, ...) and the checkpoint
machinery consume: ``config``, ``store``, ``log``, ``locks``,
``progress``, ``pass3`` and ``tree()``.  The store is the shard's leased
:class:`~repro.shard.store.ShardStore`; log, locks and progress are the
shared instances; ``pass3`` is the shard's *own*
:class:`~repro.db.Pass3State`, so each shard's side file, stable key and
new-root bookkeeping evolve independently and are checkpointed per shard.

All tree access goes through the shard's own store view — never through
``Database.tree()`` (enforced statically by the ``shard-router-only``
reprolint rule), so a handle can only ever reach its own tree.
"""

from __future__ import annotations

from repro.btree.tree import BPlusTree
from repro.config import TreeConfig, gapped_leaf_fill
from repro.db import Pass3State
from repro.locks.manager import LockManager
from repro.metrics import FragmentationStats, ShardStats
from repro.shard.store import ShardStore
from repro.storage.page import Record
from repro.wal.log import LogManager
from repro.wal.progress import ReorgProgressTable


class ShardHandle:
    """Database-shaped facade over one shard of the forest."""

    def __init__(
        self,
        *,
        index: int,
        tree_name: str,
        config: TreeConfig,
        store: ShardStore,
        log: LogManager,
        locks: LockManager,
        progress: ReorgProgressTable,
    ):
        self.shard_index = index
        self.tree_name = tree_name
        self.config = config
        self.store = store
        self.log = log
        self.locks = locks
        self.progress = progress
        self.pass3 = Pass3State()
        #: Names this shard's side file: shard switches X-lock
        #: ``sidefile_lock(tree_name)``, and shard updaters IX the same
        #: resource, so switch drains never entangle other shards.
        self.sidefile_name = tree_name
        self.stats = ShardStats()
        #: Live fill-factor/split-rate tracker for this shard's tree;
        #: :meth:`tree` wires it onto every handle it returns, and the
        #: auto-reorg daemon polls it (after a ``sync_from_tree``
        #: baseline).
        self.frag = FragmentationStats(
            leaf_capacity=gapped_leaf_fill(config, 1.0)
        )

    # -- tree access ---------------------------------------------------------

    def tree(self, name: str | None = None) -> BPlusTree:
        if name is not None and name != self.tree_name:
            raise ValueError(
                f"shard {self.shard_index} owns tree {self.tree_name!r}, "
                f"not {name!r} — route through the ShardedDatabase instead"
            )
        tree = BPlusTree.attach(self.store, self.log, name=self.tree_name)
        tree.frag_stats = self.frag
        return tree

    def has_tree(self, name: str | None = None) -> bool:
        target = name if name is not None else self.tree_name
        return (
            target == self.tree_name
            and self.store.disk.get_meta(f"root:{target}") is not None
        )

    def create_tree(self) -> BPlusTree:
        return BPlusTree.create(self.store, self.log, name=self.tree_name)

    def bulk_load_tree(
        self,
        records: list[Record],
        *,
        leaf_fill: float = 1.0,
        internal_fill: float = 1.0,
    ) -> BPlusTree:
        from repro.btree.bulkload import bulk_load

        tree = bulk_load(
            self.store,
            self.log,
            records,
            name=self.tree_name,
            leaf_fill=leaf_fill,
            internal_fill=internal_fill,
        )
        tree.frag_stats = self.frag
        return tree

    def __repr__(self) -> str:
        return (
            f"<ShardHandle {self.shard_index} {self.tree_name!r} "
            f"leaf=[{self.store.leaf_lease.start},{self.store.leaf_lease.end})>"
        )
