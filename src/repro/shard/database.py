"""The sharded database facade.

A :class:`ShardedDatabase` owns one underlying :class:`repro.db.Database`
whose storage, log, lock manager and progress table are *shared* by every
shard, plus N :class:`~repro.shard.handle.ShardHandle` views with disjoint
extent leases.  Keys route through a :class:`~repro.shard.router.ShardRouter`;
cross-shard range scans concatenate per-shard scans (range partitioning
keeps shard outputs contiguous and ordered, and each per-shard scan reuses
the readahead path of the underlying tree).

With ``n_shards=1`` the forest degenerates to a single tree whose leaf
layout is byte-identical to an unsharded database bulk-loaded from the
same records — the full-extent lease makes every allocation decision
identical (asserted by the ``reorg_20k_sharded`` benchmark).
"""

from __future__ import annotations

import dataclasses

from repro.config import ShardConfig, TreeConfig
from repro.db import Database, Pass3State
from repro.perf import PERF
from repro.shard.handle import ShardHandle
from repro.shard.router import ShardRouter
from repro.shard.store import ShardStore
from repro.storage.page import Record
from repro.storage.store import INTERNAL_EXTENT, LEAF_EXTENT
from repro.wal.recovery import RecoveryReport, take_checkpoint


class ShardedDatabase:
    """Range-partitioned forest of B+-trees behind a key router."""

    def __init__(
        self,
        config: TreeConfig | None = None,
        shard_config: ShardConfig | None = None,
    ):
        self.config = config or TreeConfig()
        self.shard_config = shard_config or ShardConfig()
        self._db = Database(self.config)
        self.store = self._db.store
        self.log = self._db.log
        self.locks = self._db.locks
        self.progress = self._db.progress
        self.handles: list[ShardHandle] = []
        #: Built by :meth:`bulk_load` (or :meth:`set_separators`).
        self.router: ShardRouter | None = None
        self._build_handles()

    # -- construction --------------------------------------------------------

    def _build_handles(self) -> None:
        base = self._db.store
        n = self.shard_config.n_shards
        free_map = base.free_map
        # A forest-wide placement override replaces the tree config each
        # handle sees; per-shard reorganizers then resolve their placement
        # policy from their own handle, window-clamped by their leases.
        handle_config = self.config
        if self.shard_config.placement_policy is not None:
            handle_config = dataclasses.replace(
                self.config, placement_policy=self.shard_config.placement_policy
            )
        for i in range(n):
            leaf = self._slice(base.disk.extent(LEAF_EXTENT), i, n)
            internal = self._slice(base.disk.extent(INTERNAL_EXTENT), i, n)
            store = ShardStore(
                base,
                free_map.grant_lease(LEAF_EXTENT, *leaf),
                free_map.grant_lease(INTERNAL_EXTENT, *internal),
            )
            handle = ShardHandle(
                index=i,
                tree_name=f"{self.shard_config.tree_prefix}{i}",
                config=handle_config,
                store=store,
                log=self.log,
                locks=self.locks,
                progress=self.progress,
            )
            PERF.register_shard(handle.tree_name, handle.stats)
            self.handles.append(handle)

    @staticmethod
    def _slice(extent, i: int, n: int) -> tuple[int, int]:
        start = extent.start + i * extent.size // n
        end = extent.start + (i + 1) * extent.size // n
        return start, end

    def handle(self, index: int) -> ShardHandle:
        return self.handles[index]

    def tree(self, name: str):
        """Attach one shard's tree by its shard tree name.

        Exists for tooling that duck-types ``Database`` (e.g. the model
        checker's ``World``); shard-internal code and applications route
        through the handles / the facade operations instead.
        """
        for handle in self.handles:
            if handle.tree_name == name:
                return handle.tree()
        raise KeyError(f"no shard owns tree {name!r}")

    def set_separators(self, separators: tuple[int, ...]) -> None:
        """Install partition bounds explicitly (before any loading)."""
        self.router = ShardRouter(tuple(separators), self.shard_config.n_shards)

    # -- loading -------------------------------------------------------------

    def bulk_load(
        self,
        records: list[Record],
        *,
        leaf_fill: float = 1.0,
        internal_fill: float = 1.0,
    ) -> None:
        """Partition sorted records across shards and bulk-load each tree.

        Separators come from :class:`~repro.config.ShardConfig` when given,
        else are derived equi-populated from the records themselves.
        """
        records = sorted(records, key=lambda r: r.key)
        if self.router is None:
            if self.shard_config.separators:
                self.set_separators(self.shard_config.separators)
            else:
                self.set_separators(self._derive_separators(records))
        router = self.router
        buckets: list[list[Record]] = [[] for _ in self.handles]
        for record in records:
            buckets[router.shard_for(record.key)].append(record)
        for handle, bucket in zip(self.handles, buckets):
            handle.bulk_load_tree(
                bucket, leaf_fill=leaf_fill, internal_fill=internal_fill
            )

    def _derive_separators(self, records: list[Record]) -> tuple[int, ...]:
        n = self.shard_config.n_shards
        if n == 1:
            return ()
        if len(records) < n:
            raise ValueError(f"need at least {n} records to derive separators")
        seps = []
        for i in range(1, n):
            seps.append(records[i * len(records) // n].key)
        if any(b <= a for a, b in zip(seps, seps[1:])):
            raise ValueError(
                "records too skewed to derive distinct separators; pass "
                "ShardConfig.separators explicitly"
            )
        return tuple(seps)

    def _routed(self, key: int) -> ShardHandle:
        if self.router is None:
            raise RuntimeError("no router yet: bulk_load or set_separators first")
        return self.handles[self.router.shard_for(key)]

    # -- point operations ----------------------------------------------------

    def insert(self, record: Record) -> None:
        handle = self._routed(record.key)
        handle.stats.routed_inserts += 1
        handle.tree().insert(record)

    def delete(self, key: int) -> Record:
        handle = self._routed(key)
        handle.stats.routed_deletes += 1
        return handle.tree().delete(key)

    def search(self, key: int) -> Record | None:
        handle = self._routed(key)
        handle.stats.routed_lookups += 1
        return handle.tree().search(key)

    # -- scans ---------------------------------------------------------------

    def range_scan(self, low: int, high: int) -> list[Record]:
        """Merged cross-shard scan: per-shard scans concatenate in shard
        order (range partitioning keeps them disjoint and sorted).

        The shard-boundary check is hoisted out of the per-leaf work: each
        shard's scan bounds are clamped *once* against the router's
        partition bounds, so routing costs O(#shards) probes per scan —
        never one per leaf step — and a fully covered middle shard scans
        under its own tighter bounds instead of the global ones.
        """
        if self.router is None:
            raise RuntimeError("no router yet: bulk_load or set_separators first")
        router = self.router
        out: list[Record] = []
        for index in router.shards_for_range(low, high):
            handle = self.handles[index]
            shard_low, shard_high = router.key_range_of(index)
            lo = low if shard_low is None else max(low, shard_low)
            hi = high if shard_high is None else min(high, shard_high - 1)
            part = handle.tree().range_scan(lo, hi)
            handle.stats.scan_fragments += 1
            handle.stats.scan_records += len(part)
            out.extend(part)
        return out

    def record_count(self) -> int:
        return sum(h.tree().record_count() for h in self.handles)

    def validate(self) -> None:
        for handle in self.handles:
            handle.tree().validate()

    # -- durability ----------------------------------------------------------

    def checkpoint(self, active_txns: dict[int, int] | None = None) -> int:
        """Sharp checkpoint carrying every shard's pass-3 state."""
        shard_pass3 = tuple(
            (
                h.tree_name,
                h.pass3.reorg_bit,
                h.pass3.stable_key,
                h.pass3.new_root,
                tuple(h.pass3.side_file_entries),
                tuple(h.pass3.built_entries),
            )
            for h in self.handles
        )
        return take_checkpoint(
            self._db.store,
            self.log,
            active_txns=active_txns,
            progress=self.progress,
            shard_pass3=shard_pass3,
        )

    def flush(self) -> None:
        self._db.flush()

    # -- crash / recovery ----------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state, including per-shard pass-3 bookkeeping."""
        self._db.crash()
        free_map = self._db.store.free_map
        for handle in self.handles:
            handle.pass3 = Pass3State()
            store = handle.store
            store.free_map = free_map
            # The rebuilt free map has no lease bookkeeping; re-granting
            # re-validates disjointness and keeps the lease objects fresh.
            store.leaf_lease = free_map.grant_lease(
                LEAF_EXTENT, store.leaf_lease.start, store.leaf_lease.end
            )
            store.internal_lease = free_map.grant_lease(
                INTERNAL_EXTENT,
                store.internal_lease.start,
                store.internal_lease.end,
            )

    def recover(self, *, undo: bool = True) -> RecoveryReport:
        """Redo + undo, then restore each shard's checkpointed pass-3 state.

        Limitation (see ROADMAP open items): pass-3 state changes logged
        *after* the checkpoint are replayed into the report's single global
        fields, so a crash mid-pass-3 across several shards restores only
        the checkpointed per-shard state, not the post-checkpoint log tail.
        """
        report = self._db.recover(undo=undo)
        for handle in self.handles:
            entry = report.shard_pass3.get(handle.tree_name)
            if entry is None:
                handle.pass3 = Pass3State()
                continue
            _name, reorg_bit, stable_key, new_root, side_file, built = entry
            handle.pass3 = Pass3State(
                reorg_bit=reorg_bit,
                stable_key=stable_key,
                new_root=new_root,
                side_file_entries=list(side_file),
                built_entries=list(built),
            )
        return report
