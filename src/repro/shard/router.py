"""The key router: which shard owns which key range.

Range partitioning by ``n_shards - 1`` strictly increasing separator keys:
shard 0 owns ``(-inf, sep[0])``, shard i owns ``[sep[i-1], sep[i])``, the
last shard owns ``[sep[-1], +inf)``.  Routing is a single bisect, and
range queries map to a contiguous run of shards, so a cross-shard scan is
a concatenation of per-shard scans — no merge heap needed.
"""

from __future__ import annotations

import bisect


class ShardRouter:
    """Maps keys and key ranges to shard indices."""

    def __init__(self, separators: tuple[int, ...], n_shards: int):
        if len(separators) != n_shards - 1:
            raise ValueError(
                f"need {n_shards - 1} separators for {n_shards} shards, "
                f"got {len(separators)}"
            )
        if any(b <= a for a, b in zip(separators, separators[1:])):
            raise ValueError("separators must be strictly increasing")
        self.separators = tuple(separators)
        self.n_shards = n_shards

    def shard_for(self, key: int) -> int:
        """Index of the shard owning ``key``."""
        return bisect.bisect_right(self.separators, key)

    def shards_for_range(self, low: int, high: int) -> range:
        """Contiguous run of shard indices overlapping ``[low, high]``."""
        if high < low:
            return range(0, 0)
        return range(self.shard_for(low), self.shard_for(high) + 1)

    def key_range_of(self, shard: int) -> tuple[int | None, int | None]:
        """(inclusive low, exclusive high) bound of a shard; None = open."""
        low = self.separators[shard - 1] if shard > 0 else None
        high = (
            self.separators[shard] if shard < self.n_shards - 1 else None
        )
        return low, high
