"""Fully parallel three-pass reorganization across shards.

One :class:`~repro.reorg.protocols.ReorgProtocol` per shard — each running
the complete compact → swap → shrink sequence, including side-file capture
and the section 7.4 switch — spawned as interleaved processes on the one
deterministic scheduler.  Safety comes from the partitioning itself:

* trees are disjoint, so unit locking never crosses shards;
* new-place / upper-level allocation is confined to per-shard extent
  leases, so Find-Free-Space targets cannot collide;
* each shard switch drains its *own* side file
  (``sidefile_lock(tree_name)``) and its own tree-lock epoch, leaving the
  other shards' traffic untouched;
* unit ids come from one shared counter, so the progress table and crash
  recovery see globally unique units, exactly as in the single-tree
  parallel-pass-1 extension.

Each reorganizer transaction carries ``shard=<tree name>``, which the
deadlock victim policy uses for a deterministic choice when two shard
reorganizers ever cycle with each other (e.g. through shared user keys).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import ReorgConfig
from repro.reorg.parallel import _SharedUnitIds
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.shard.database import ShardedDatabase
from repro.shard.handle import ShardHandle
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import Transaction


class ParallelReorganizer:
    """Spawns one full three-pass reorganizer per shard."""

    def __init__(
        self,
        sdb: ShardedDatabase,
        config: ReorgConfig | None = None,
        *,
        unit_pause: float = 0.0,
        scan_pause: float = 0.0,
        op_duration: float = 0.0,
    ):
        self.sdb = sdb
        self.config = config or ReorgConfig()
        self.unit_pause = unit_pause
        self.scan_pause = scan_pause
        self.op_duration = op_duration
        #: Globally monotonic unit ids across all shard workers.
        self._unit_ids = _SharedUnitIds()
        #: Per-shard pass stats, filled as each reorganizer completes.
        self.results: dict[str, dict] = {}

    def protocol_for(
        self, handle: ShardHandle, scheduler: Scheduler
    ) -> ReorgProtocol:
        proto = ReorgProtocol(
            handle,
            handle.tree_name,
            self.config,
            unit_pause=self.unit_pause,
            scan_pause=self.scan_pause,
            op_duration=self.op_duration,
            abort_hook=lambda txns: [
                scheduler.abort_transaction(t) for t in txns
            ],
        )
        proto.engine._unit_ids = self._unit_ids
        return proto

    def _run_one(
        self, handle: ShardHandle, proto: ReorgProtocol, scheduler: Scheduler
    ) -> Generator[Any, Any, dict]:
        stats = yield from full_reorganization(proto)
        handle.stats.reorg_units += stats.get("pass1", {}).get("units", 0)
        handle.stats.reorg_makespan = scheduler.now
        self.results[handle.tree_name] = stats
        return stats

    def spawn_all(
        self, scheduler: Scheduler, *, at: float = 0.0
    ) -> list[Transaction]:
        """Register one reorganizer process per shard; returns their txns."""
        txns = []
        for handle in self.sdb.handles:
            proto = self.protocol_for(handle, scheduler)
            txn = scheduler.spawn(
                self._run_one(handle, proto, scheduler),
                name=f"reorg-{handle.tree_name}",
                at=at,
                is_reorganizer=True,
                shard=handle.tree_name,
            )
            txns.append(txn)
        return txns

    def run(self, scheduler: Scheduler | None = None) -> float:
        """Reorganize every shard concurrently; returns the DES makespan."""
        if scheduler is None:
            scheduler = Scheduler(
                self.sdb.locks, store=self.sdb.store, log=self.sdb.log
            )
        self.spawn_all(scheduler)
        scheduler.run()
        if scheduler.failed:
            txn, error = scheduler.failed[0]
            raise RuntimeError(
                f"shard reorganizer {txn.name} failed: {error!r}"
            ) from error
        return scheduler.now
