"""Per-shard storage view: the shared StorageManager seen through leases.

A :class:`ShardStore` shares the disk, free-space map and buffer pool of
the one underlying :class:`~repro.storage.store.StorageManager` but owns
an :class:`~repro.storage.allocator.ExtentLease` on a slice of the leaf
extent and one on the internal extent.  Every allocation it performs —
leaf splits, pass-1 new-place targets, pass-3 upper levels — lands inside
its leases, so concurrent shard reorganizers can run Find-Free-Space
without their targets ever colliding (the lease bounds are also consulted
directly by :func:`repro.reorg.freespace.find_free_page`).
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.allocator import ExtentLease
from repro.storage.buffer import WALHook
from repro.storage.page import InternalPage, LeafPage, Page, PageId, PageKind
from repro.storage.store import INTERNAL_EXTENT, LEAF_EXTENT, StorageManager


class ShardStore:
    """A lease-constrained view over one shared :class:`StorageManager`."""

    def __init__(
        self,
        base: StorageManager,
        leaf_lease: ExtentLease,
        internal_lease: ExtentLease,
    ):
        if leaf_lease.extent != LEAF_EXTENT:
            raise StorageError("leaf_lease must cover the leaf extent")
        if internal_lease.extent != INTERNAL_EXTENT:
            raise StorageError("internal_lease must cover the internal extent")
        self._base = base
        self.config = base.config
        self.disk = base.disk
        self.free_map = base.free_map
        self.buffer = base.buffer
        self.leaf_lease = leaf_lease
        self.internal_lease = internal_lease
        # Same hot-path shadowing as StorageManager: reads are unrestricted,
        # and version stamps live on the one shared buffer pool, so
        # optimistic readers validate identically through either facade.
        self.get = base.buffer.fetch
        self.version_of = base.buffer.version_of

    # -- allocation (lease-constrained) --------------------------------------

    def allocate_leaf(self, page_id: PageId | None = None) -> LeafPage:
        pid = self.free_map.allocate_in_lease(self.leaf_lease, page_id)
        page = LeafPage(pid, self.config.leaf_capacity)
        self.buffer.put_new(page)
        return page

    def allocate_internal(
        self, level: int, page_id: PageId | None = None
    ) -> InternalPage:
        pid = self.free_map.allocate_in_lease(self.internal_lease, page_id)
        page = InternalPage(pid, self.config.internal_capacity, level=level)
        self.buffer.put_new(page)
        return page

    def deallocate(self, page_id: PageId) -> None:
        self._base.deallocate(page_id)

    # -- access (delegated; reads cross lease bounds freely) -----------------

    def get_leaf(self, page_id: PageId) -> LeafPage:
        page = self.buffer.fetch(page_id)
        if page.kind is not PageKind.LEAF:
            raise StorageError(f"page {page_id} is not a leaf page")
        return page  # type: ignore[return-value]

    def get_internal(self, page_id: PageId) -> InternalPage:
        page = self.buffer.fetch(page_id)
        if page.kind is not PageKind.INTERNAL:
            raise StorageError(f"page {page_id} is not an internal page")
        return page  # type: ignore[return-value]

    def mark_dirty(self, page_id: PageId, lsn: int | None = None) -> None:
        self.buffer.mark_dirty(page_id, lsn)

    def prefetch(self, page_ids) -> int:
        return self._base.prefetch(page_ids)

    # -- durability (delegated) ----------------------------------------------

    def set_wal(self, wal: WALHook) -> None:
        self._base.set_wal(wal)

    def flush_all(self) -> None:
        self._base.flush_all()

    def force(self, page_ids: list[PageId]) -> None:
        self._base.force(page_ids)

    def crash(self) -> None:
        self._base.crash()

    def rebuild_free_map_from_disk(self) -> None:
        self._base.rebuild_free_map_from_disk()
        self.free_map = self._base.free_map
