"""Sharded tree forest: range-partitioned B+-trees (paper section 9).

"Future work includes ... exploration of parallelism in reorganization."
This package scales that idea *out*: a :class:`ShardedDatabase` is a
forest of N B+-trees behind a :class:`ShardRouter`, each shard owning an
exclusive lease on a slice of the shared leaf and internal extents, all
shards sharing the one log, lock manager and deterministic scheduler.
:class:`ParallelReorganizer` runs the full three-pass algorithm (compact,
swap, shrink — including side-file capture and the section 7.4 switch)
concurrently across shards as interleaved scheduler processes.

See ``docs/sharding.md`` for the design notes and determinism guarantees.
"""

from repro.shard.database import ShardedDatabase
from repro.shard.handle import ShardHandle
from repro.shard.reorganizer import ParallelReorganizer
from repro.shard.router import ShardRouter
from repro.shard.store import ShardStore

__all__ = [
    "ParallelReorganizer",
    "ShardHandle",
    "ShardRouter",
    "ShardStore",
    "ShardedDatabase",
]
