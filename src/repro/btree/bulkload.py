"""Bottom-up B+-tree construction from sorted input.

"Constructing a B+-tree from sorted records in a bottom-up fashion is
described in chapter 5 section 5 of [Sal88].  Essentially, the records are
copied to newly allocated empty pages as they arrive.  When a new page is
added, no splitting is necessary.  The first page is filled to a
pre-assigned fill factor, and then the next records go in the next page.
Each new page requires a new entry in the level above." (paper section 7.1)

Two entry points:

* :func:`bulk_load` — build a complete tree from sorted records (used to
  set up experiment trees and by the quickstart example);
* :func:`build_upper_levels` — build only the levels *above* the leaves
  from a stream of (separator key, leaf page id) entries.  This is exactly
  what pass 3 of the reorganizer does: the leaves stay in place and a new
  upper tree is constructed beside the old one.  The optional
  ``on_page_built`` callback lets the caller implement the paper's stable
  points (force-write every N pages, section 7.3).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import BTreeError
from repro.storage.page import InternalPage, PageId, Record
from repro.storage.store import StorageManager
from repro.wal.apply import apply_record
from repro.wal.log import LogManager
from repro.wal.records import (
    AllocRecord,
    InternalFormatRecord,
    LeafFormatRecord,
    SidePointerRecord,
)
from repro.config import SidePointerKind, gapped_leaf_fill, leaf_gap_slots
from repro.perf import PERF


def _fill_count(capacity: int, fill: float) -> int:
    """Records per page for a fill factor, at least 1."""
    return max(1, math.floor(capacity * fill + 1e-9))


def _chunk(items: Sequence, size: int) -> list[list]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _log_apply(store: StorageManager, log: LogManager, record) -> None:
    log.append(record)
    apply_record(store, record)


def build_leaf_level(
    store: StorageManager,
    log: LogManager,
    records: Sequence[Record],
    *,
    fill: float,
    side_pointers: SidePointerKind = SidePointerKind.NONE,
) -> list[tuple[int, PageId]]:
    """Pack sorted records into new leaves; returns (min key, page id) pairs."""
    keys = [r.key for r in records]
    if keys != sorted(keys):
        raise BTreeError("bulk load input must be sorted by key")
    if len(set(keys)) != len(keys):
        raise BTreeError("bulk load input must not contain duplicate keys")
    # Leaf packing honours the configured gap: gapped_leaf_fill clamps the
    # fill-count so each new leaf keeps its reserved slack free (identical
    # to the historical fill arithmetic when leaf_gap_fraction is 0).
    per_page = gapped_leaf_fill(store.config, fill)
    gapped = leaf_gap_slots(store.config) > 0
    entries: list[tuple[int, PageId]] = []
    previous_id: PageId | None = None
    for chunk in _chunk(records, per_page):
        leaf = store.allocate_leaf()
        _log_apply(store, log, AllocRecord(page_id=leaf.page_id, kind="leaf"))
        prev_ptr = (
            previous_id
            if side_pointers is SidePointerKind.TWO_WAY and previous_id is not None
            else -1
        )
        _log_apply(
            store,
            log,
            LeafFormatRecord(
                page_id=leaf.page_id,
                records=tuple(chunk),
                next_leaf=-1,
                prev_leaf=prev_ptr,
            ),
        )
        if previous_id is not None and side_pointers is not SidePointerKind.NONE:
            previous = store.get_leaf(previous_id)
            _log_apply(
                store,
                log,
                SidePointerRecord(
                    page_id=previous_id,
                    next_leaf=leaf.page_id,
                    prev_leaf=previous.prev_leaf,
                ),
            )
        entries.append((chunk[0].key, leaf.page_id))
        previous_id = leaf.page_id
    if gapped:
        PERF.gap.gapped_leaves_built += len(entries)
    return entries


def build_upper_levels(
    store: StorageManager,
    log: LogManager,
    entries: Sequence[tuple[int, PageId]],
    *,
    fill: float,
    on_page_built: Callable[[InternalPage], None] | None = None,
    start_level: int = 1,
    place: Callable[[int, int], PageId | None] | None = None,
) -> PageId:
    """Build internal levels over (key, child) entries; returns the root id.

    ``on_page_built`` fires after each new internal page is formatted —
    pass 3 counts pages here to place its stable points.  ``start_level``
    is the level of the first level built (1 when the children are leaves;
    2 when the children are already-built base pages, as in pass 3).
    ``place(level, index)`` may name a specific free page for the
    ``index``-th page of ``level`` — the placement-policy hook pass 3 uses
    for vEB layout; None (per call or overall) keeps first-fit allocation.
    """
    if not entries:
        raise BTreeError("cannot build upper levels over zero entries")
    per_page = _fill_count(store.config.internal_capacity, fill)
    level = start_level
    current: list[tuple[int, PageId]] = list(entries)
    while len(current) > 1 or level == start_level:
        next_level: list[tuple[int, PageId]] = []
        for index, chunk in enumerate(_chunk(current, per_page)):
            page = store.allocate_internal(
                level=level,
                page_id=place(level, index) if place is not None else None,
            )
            _log_apply(
                store, log,
                AllocRecord(page_id=page.page_id, kind="internal", level=level),
            )
            _log_apply(
                store, log,
                InternalFormatRecord(
                    page_id=page.page_id,
                    level=level,
                    entries=tuple(chunk),
                    low_mark=chunk[0][0],
                ),
            )
            if on_page_built is not None:
                on_page_built(store.get_internal(page.page_id))
            next_level.append((chunk[0][0], page.page_id))
        if len(next_level) == 1:
            return next_level[0][1]
        current = next_level
        level += 1
    # Single entry at level 1: wrap it in one root page anyway (handled in
    # the loop), so reaching here means a single child entry was passed.
    return current[0][1]


def bulk_load(
    store: StorageManager,
    log: LogManager,
    records: Sequence[Record],
    *,
    name: str = "primary",
    leaf_fill: float = 1.0,
    internal_fill: float = 1.0,
):
    """Build a complete tree from sorted records; returns a BPlusTree."""
    from repro.btree.tree import BPlusTree

    if store.disk.get_meta(f"root:{name}") is not None:
        raise BTreeError(f"tree {name!r} already exists")
    if not records:
        return BPlusTree.create(store, log, name=name)
    side = store.config.side_pointers
    entries = build_leaf_level(
        store, log, records, fill=leaf_fill, side_pointers=side
    )
    if len(entries) == 1:
        root_id = entries[0][1]
    else:
        root_id = build_upper_levels(store, log, entries, fill=internal_fill)
    store.disk.set_meta(f"root:{name}", root_id)
    return BPlusTree.attach(store, log, name=name)
