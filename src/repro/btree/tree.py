"""The primary B+-tree.

The tree of the paper (section 2): leaves hold the data records (primary
index), an internal node with n keys has n children (each entry key is a
lower bound for its child's subtree), and the **free-at-empty** policy
[JS93] governs deletions — sparse nodes are never consolidated, but a node
that becomes completely empty is deallocated and its parent updated.

All mutating operations follow the do-equals-redo discipline: compose a log
record, append it, and apply it through :func:`repro.wal.apply.apply_record`
so recovery replays the identical code path.  Locking is *not* done here —
the tree's methods are the synchronous engine; the lock choreography of
sections 4.1.2/4.1.3 lives in :mod:`repro.btree.protocols` as generator
protocols for the discrete-event scheduler.

Side pointers (section 4.3) are optional per
:class:`~repro.config.TreeConfig`: NONE, ONE_WAY (next only) or TWO_WAY.
"""

from __future__ import annotations

from typing import Iterator

from repro.config import SidePointerKind, TreeConfig, gapped_leaf_fill
from repro.perf import PERF
from repro.errors import (
    BTreeError,
    KeyNotFoundError,
    TreeInvariantError,
)
from repro.storage.page import (
    InternalPage,
    LeafPage,
    NO_PAGE,
    Page,
    PageId,
    PageKind,
    Record,
)
from repro.storage.store import StorageManager
from repro.txn.transaction import Transaction
from repro.wal.apply import apply_record, is_redoable
from repro.wal.log import LogManager
from repro.wal.records import (
    AllocRecord,
    BaseEntryDeleteRecord,
    BaseEntryInsertRecord,
    BaseEntryUpdateRecord,
    FreeRecord,
    InternalFormatRecord,
    LeafDeleteRecord,
    LeafFormatRecord,
    LeafInsertRecord,
    SidePointerRecord,
    TxnRecord,
)


class BPlusTree:
    """Handle over a tree rooted at the page named in the disk metadata."""

    def __init__(self, store: StorageManager, log: LogManager, *, name: str = "primary"):
        self.store = store
        self.log = log
        self.name = name
        self._root_key = f"root:{name}"
        #: Optional observer called as ``listener(op, base_page_id, key,
        #: child)`` with op in {"insert", "delete"} whenever a *base page*
        #: (level-1) entry changes.  Pass 3 of the reorganizer registers
        #: the section 7.2 updater logic here: a change behind the scan's
        #: current key must also be appended to the side file.
        self.base_change_listener = None
        #: Optional :class:`repro.metrics.FragmentationStats` bag this
        #: tree's insert/delete/split/free paths feed.  Database.tree()
        #: and ShardHandle.tree() wire the owner's per-tree instance here
        #: so live fill-factor metrics survive the throwaway tree handles.
        self.frag_stats = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls, store: StorageManager, log: LogManager, *, name: str = "primary"
    ) -> "BPlusTree":
        """Create an empty tree: the root is a single empty leaf."""
        tree = cls(store, log, name=name)
        if store.disk.get_meta(tree._root_meta_key()) is not None:
            raise BTreeError(f"tree {name!r} already exists")
        root = store.allocate_leaf()
        tree._log_apply(AllocRecord(page_id=root.page_id, kind="leaf"))
        tree._log_apply(LeafFormatRecord(page_id=root.page_id, records=()))
        store.disk.set_meta(tree._root_meta_key(), root.page_id)
        return tree

    @classmethod
    def attach(
        cls, store: StorageManager, log: LogManager, *, name: str = "primary"
    ) -> "BPlusTree":
        """Re-open an existing tree (e.g. after crash recovery)."""
        tree = cls(store, log, name=name)
        if store.disk.get_meta(tree._root_meta_key()) is None:
            raise BTreeError(f"no tree named {name!r} on this disk")
        return tree

    def _root_meta_key(self) -> str:
        return self._root_key

    @property
    def root_id(self) -> PageId:
        root = self.store.disk.get_meta(self._root_key)
        if root is None:
            raise BTreeError(f"tree {self.name!r} has no root")
        return root  # type: ignore[return-value]

    def set_root(self, page_id: PageId) -> None:
        """Durably record a new root location ("a special place on the
        disk", section 7.4).  Used by splits of the root and by the switch."""
        self.store.disk.set_meta(self._root_meta_key(), page_id)

    @property
    def config(self) -> TreeConfig:
        return self.store.config

    @property
    def side_pointers(self) -> SidePointerKind:
        return self.config.side_pointers

    # -- logging helper ------------------------------------------------------------

    def _log_apply(self, record: TxnRecord, txn: Transaction | None = None):
        """Append a record (chained to ``txn`` if given) and apply it."""
        if txn is not None:
            record.txn_id = txn.txn_id
            record.prev_lsn = txn.last_lsn
        lsn = self.log.append(record)
        if txn is not None:
            txn.last_lsn = lsn
        if is_redoable(record):
            apply_record(self.store, record)
        return record

    # -- descent ----------------------------------------------------------------

    def path_to_leaf(self, key: int) -> list[PageId]:
        """Page ids from the root down to the leaf responsible for ``key``."""
        get = self.store.get
        path = [self.root_id]
        page = get(path[-1])
        while page.kind is PageKind.INTERNAL:
            child = page.child_for(key)  # type: ignore[union-attr]
            path.append(child)
            page = get(child)
        return path

    def leaf_for(self, key: int) -> LeafPage:
        return self.store.get_leaf(self.path_to_leaf(key)[-1])

    @staticmethod
    def descend_step(page: Page, key: int) -> PageId | None:
        """One descent step: the child page id to follow for ``key``, or
        ``None`` when ``page`` is a leaf.

        Shared by the locked and the optimistic DES protocols — the
        optimistic reader needs the step isolated because the pointer read
        must happen *after* the page's version stamp validated, atomically
        with the next stamp capture (see
        :mod:`repro.btree.protocols`)."""
        if page.kind is PageKind.LEAF:
            return None
        return page.child_for(key)  # type: ignore[union-attr]

    def base_page_for(self, key: int) -> InternalPage | None:
        """The parent-of-leaf ("base") page responsible for ``key``, or
        None when the root itself is a leaf."""
        path = self.path_to_leaf(key)
        if len(path) < 2:
            return None
        return self.store.get_internal(path[-2])

    def leftmost_leaf_id(self) -> PageId:
        page_id = self.root_id
        page = self.store.get(page_id)
        while page.kind is PageKind.INTERNAL:
            page_id = page.children()[0]  # type: ignore[union-attr]
            page = self.store.get(page_id)
        return page_id

    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        levels = 1
        page = self.store.get(self.root_id)
        while page.kind is PageKind.INTERNAL:
            levels += 1
            page = self.store.get(page.children()[0])  # type: ignore[union-attr]
        return levels

    # -- queries -----------------------------------------------------------------

    def search(self, key: int) -> Record | None:
        return self.leaf_for(key).find(key)

    def range_scan(self, low: int, high: int) -> list[Record]:
        """All records with low <= key <= high, in key order.

        Walks side pointers when the tree maintains them, otherwise
        re-descends for each successor leaf; either way the disk I/O
        counters capture the motivating cost (section 1).

        With ``readahead_pages`` > 0 the scan prefetches upcoming leaves a
        base page at a time: the parent level (in memory, as the paper
        assumes for section 6) already names the next leaves, so they are
        read as one batch instead of a seek per leaf.  In a degraded tree
        the leaves are scattered and the batch sweep is the whole win;
        after reorganization they are contiguous and the batch degenerates
        to the sequential reads the scan pays anyway.
        """
        if high < low:
            return []
        readahead = self.store.config.readahead_pages > 0
        out: list[Record] = []
        if readahead:
            path = self.path_to_leaf(low)
            leaves_before_refill = self._prefetch_base_leaves(
                path[-2] if len(path) >= 2 else None, after_leaf=path[-1]
            )
            leaf = self.store.get_leaf(path[-1])
        else:
            leaf = self.leaf_for(low)
        while True:
            out.extend(leaf.records_in_range(low, high))
            if not leaf.is_empty and leaf.max_key() > high:
                return out
            next_id = self._successor_or_no_page(leaf)
            if next_id == NO_PAGE:
                return out
            if readahead:
                if leaves_before_refill <= 0 and not leaf.is_empty:
                    base = self.next_base_page_after(leaf.max_key())
                    leaves_before_refill = self._prefetch_base_leaves(
                        base.page_id if base is not None else None
                    )
                leaves_before_refill -= 1
            leaf = self.store.get_leaf(next_id)

    def _prefetch_base_leaves(
        self, base_id: PageId | None, *, after_leaf: PageId | None = None
    ) -> int:
        """Prefetch the leaf children of one base page; returns how many
        leaves the scan will consume before the next refill is due.

        ``after_leaf`` restricts the batch to children past the scan's
        entry leaf.  With no base page (leaf root / end of tree) a large
        sentinel is returned so the scan never asks again.
        """
        if base_id is None:
            return 1 << 30
        children = self.store.get_internal(base_id).children()
        if after_leaf is not None:
            index = children.index(after_leaf) if after_leaf in children else -1
            upcoming = children[index + 1 :]
        else:
            upcoming = children
        self.store.prefetch(upcoming)
        return len(upcoming)

    def _next_leaf_id(self, leaf: LeafPage) -> PageId:
        if self.side_pointers is not SidePointerKind.NONE:
            return leaf.next_leaf
        return self._next_leaf_by_descent(leaf)

    def _next_leaf_by_descent(self, leaf: LeafPage) -> PageId:
        """Successor leaf via the tree: the leftmost leaf of the first
        right-sibling subtree on the path."""
        probe = leaf.max_key() if not leaf.is_empty else None
        if probe is None:
            raise BTreeError("cannot find successor of an empty leaf")
        page_id = self.root_id
        page = self.store.get(page_id)
        candidate: PageId = NO_PAGE
        while page.kind is PageKind.INTERNAL:
            index = page.child_index_for(probe)  # type: ignore[union-attr]
            children = page.children()  # type: ignore[union-attr]
            if index + 1 < len(children):
                candidate = children[index + 1]
            page_id = children[index]
            page = self.store.get(page_id)
        if candidate == NO_PAGE:
            return NO_PAGE
        page = self.store.get(candidate)
        while page.kind is PageKind.INTERNAL:
            page = self.store.get(page.children()[0])  # type: ignore[union-attr]
        return page.page_id

    def items(self) -> Iterator[Record]:
        """Every record, in key order."""
        leaf = self.store.get_leaf(self.leftmost_leaf_id())
        while True:
            yield from leaf.records
            next_id = self._successor_or_no_page(leaf)
            if next_id == NO_PAGE:
                return
            leaf = self.store.get_leaf(next_id)

    def leaf_ids_in_key_order(self) -> list[PageId]:
        """All leaf page ids in key order, via a tree walk (robust to empty
        leaves and independent of side-pointer configuration).

        Only internal pages are fetched: base pages (level 1) list their
        leaf children directly, so the walk costs O(#internal) page reads
        instead of O(#leaves) — the reorganizer calls this around every
        unit, which made leaf fetches the dominant reorganization cost.
        """
        root = self.store.get(self.root_id)
        if root.kind is PageKind.LEAF:
            return [root.page_id]
        ids: list[PageId] = []
        stack: list[PageId] = [root.page_id]
        while stack:
            page = self.store.get_internal(stack.pop())
            if page.level == 1:
                ids.extend(page.children())
            else:
                stack.extend(reversed(page.children()))
        return ids

    def next_base_page_after(
        self, key: int, *, prefetch_siblings: bool = False
    ) -> InternalPage | None:
        """The base (level-1) page after the one covering ``key``, or None
        at the end of the tree / when the root is a leaf.

        The paper's ``Get_Next(k)`` (section 7.1): descend towards ``key``
        remembering the nearest right-sibling subtree, then take that
        subtree's leftmost level-1 descendant.  Pass 3's scan and the
        range-scan readahead both use it to find the next run of pages.

        ``prefetch_siblings`` batch-reads the base pages that follow the
        returned one (the level-2 node already lists them), so a key-order
        sweep of the base level — pass 3's read stream — pays one batch
        instead of a seek per base page.  Gated on ``readahead_pages``.
        """
        page = self.store.get(self.root_id)
        candidate: PageId | None = None
        while page.kind is PageKind.INTERNAL and page.level > 1:  # type: ignore[union-attr]
            index = page.child_index_for(key)  # type: ignore[union-attr]
            children = page.children()  # type: ignore[union-attr]
            if index + 1 < len(children):
                candidate = children[index + 1]
            if prefetch_siblings and page.level == 2:  # type: ignore[union-attr]
                self.store.prefetch(children[index + 1 :])
            page = self.store.get(children[index])
        if page.kind is PageKind.LEAF or candidate is None:
            return None
        # Leftmost level-1 descendant of the candidate subtree.
        page = self.store.get(candidate)
        while page.kind is PageKind.INTERNAL and page.level > 1:  # type: ignore[union-attr]
            if prefetch_siblings and page.level == 2:  # type: ignore[union-attr]
                self.store.prefetch(page.children())  # type: ignore[union-attr]
            page = self.store.get(page.children()[0])  # type: ignore[union-attr]
        return page  # type: ignore[return-value]

    def successor_leaf_id(self, leaf: LeafPage) -> PageId:
        """Next leaf in key order (NO_PAGE at the end), tolerating empty
        leaves mid-chain.  Uses side pointers when the tree maintains them,
        a tree descent otherwise."""
        if self.side_pointers is not SidePointerKind.NONE:
            return leaf.next_leaf
        if leaf.is_empty:
            return NO_PAGE
        return self._next_leaf_by_descent(leaf)

    # Backwards-compatible internal alias.
    _successor_or_no_page = successor_leaf_id

    def record_count(self) -> int:
        """Total records, summing per-leaf counts along the leaf walk
        instead of materializing every record through :meth:`items`."""
        get_leaf = self.store.get_leaf
        return sum(
            get_leaf(leaf_id).num_items
            for leaf_id in self.leaf_ids_in_key_order()
        )

    # -- insertion ---------------------------------------------------------------

    def insert(self, record: Record, txn: Transaction | None = None) -> None:
        """Insert a record, splitting pages as needed."""
        path, leaf = self._descend_for_insert(record.key)
        if leaf.is_full:
            leaf = self._split_leaf(path, record.key)
        elif (
            self.config.leaf_gap_fraction > 0.0
            and leaf.num_items >= gapped_leaf_fill(self.config, 1.0)
        ):
            # The insert lands in slack the gapped build reserved: a
            # gapless layout would have had this leaf full and split.
            PERF.gap.absorbed_inserts += 1
            if self.frag_stats is not None:
                self.frag_stats.absorbed_inserts += 1
        self._log_apply(
            LeafInsertRecord(
                page_id=leaf.page_id, record=record, tree_name=self.name
            ),
            txn,
        )
        if self.frag_stats is not None:
            self.frag_stats.inserts += 1
            self.frag_stats.records += 1

    def _descend_for_insert(self, key: int) -> tuple[list[PageId], LeafPage]:
        """Path from the root to the leaf responsible for ``key``, plus the
        leaf page itself (already fetched — the caller needs it next, and
        refetching the MRU frame is pure overhead on the hottest path),
        maintaining *entry key = minimum of child subtree* along the way.

        Free-at-empty deallocation leaves entry keys that are only lower
        bounds, so ``key`` can arrive below a page's first entry key at any
        level — not just below the tree minimum.  Under-minimum keys route
        to the leftmost child, so the descent lowers the first entry key
        wherever needed; doing it while building the path keeps insert to a
        single descent instead of a lowering walk plus
        :meth:`path_to_leaf`.
        """
        get = self.store.get
        root = self.root_id
        path = [root]
        page = get(root)
        while page.kind is PageKind.INTERNAL:
            first_key, child = page.route_for(key)  # type: ignore[union-attr]
            if key < first_key:
                self._log_apply(
                    BaseEntryUpdateRecord(
                        page_id=page.page_id,
                        org_key=first_key,
                        org_child=child,
                        new_key=key,
                        new_child=child,
                    )
                )
            path.append(child)
            page = get(child)
        return path, page  # type: ignore[return-value]

    def _split_leaf(self, path: list[PageId], pending_key: int) -> LeafPage:
        """Split the leaf at the end of ``path``; return the leaf that
        should now receive ``pending_key``."""
        PERF.gap.leaf_splits += 1
        if self.frag_stats is not None:
            self.frag_stats.leaf_splits += 1
            self.frag_stats.leaves += 1
        leaf = self.store.get_leaf(path[-1])
        records = list(leaf.records)
        # Keep the majority on the lower (left) side: under ascending-key
        # workloads the growing right side then starts with the most free
        # space, which keeps split cascades geometric instead of linear.
        mid = (len(records) + 1) // 2
        lower, upper = records[:mid], records[mid:]
        new_leaf = self.store.allocate_leaf()
        self._log_apply(AllocRecord(page_id=new_leaf.page_id, kind="leaf"))
        next_ptr = leaf.next_leaf
        two_way = self.side_pointers is SidePointerKind.TWO_WAY
        one_way = self.side_pointers is SidePointerKind.ONE_WAY
        self._log_apply(
            LeafFormatRecord(
                page_id=new_leaf.page_id,
                records=tuple(upper),
                next_leaf=next_ptr if (one_way or two_way) else NO_PAGE,
                prev_leaf=leaf.page_id if two_way else NO_PAGE,
            )
        )
        self._log_apply(
            LeafFormatRecord(
                page_id=leaf.page_id,
                records=tuple(lower),
                next_leaf=new_leaf.page_id if (one_way or two_way) else NO_PAGE,
                prev_leaf=leaf.prev_leaf if two_way else NO_PAGE,
            )
        )
        if two_way and next_ptr != NO_PAGE:
            neighbour = self.store.get_leaf(next_ptr)
            self._log_apply(
                SidePointerRecord(
                    page_id=next_ptr,
                    next_leaf=neighbour.next_leaf,
                    prev_leaf=new_leaf.page_id,
                )
            )
        separator = upper[0].key
        self._insert_into_parent(path[:-1], leaf.page_id, separator, new_leaf.page_id)
        return new_leaf if pending_key >= separator else self.store.get_leaf(leaf.page_id)

    def _insert_into_parent(
        self,
        ancestors: list[PageId],
        left_child: PageId,
        separator: int,
        right_child: PageId,
    ) -> None:
        if not ancestors:
            self._grow_new_root(left_child, separator, right_child)
            return
        parent = self.store.get_internal(ancestors[-1])
        if parent.is_full:
            parent = self._split_internal(ancestors, separator)
        self._log_apply(
            BaseEntryInsertRecord(
                page_id=parent.page_id, key=separator, child=right_child
            )
        )
        if parent.level == 1 and self.base_change_listener is not None:
            self.base_change_listener(
                "insert", parent.page_id, separator, right_child
            )

    def _split_internal(self, ancestors: list[PageId], pending_key: int) -> InternalPage:
        PERF.gap.internal_splits += 1
        page = self.store.get_internal(ancestors[-1])
        entries = list(page.entries)
        mid = (len(entries) + 1) // 2
        lower, upper = entries[:mid], entries[mid:]
        new_page = self.store.allocate_internal(level=page.level)
        self._log_apply(
            AllocRecord(page_id=new_page.page_id, kind="internal", level=page.level)
        )
        self._log_apply(
            InternalFormatRecord(
                page_id=new_page.page_id,
                level=page.level,
                entries=tuple(upper),
                low_mark=upper[0][0],
            )
        )
        self._log_apply(
            InternalFormatRecord(
                page_id=page.page_id,
                level=page.level,
                entries=tuple(lower),
                low_mark=page.low_mark,
            )
        )
        separator = upper[0][0]
        self._insert_into_parent(
            ancestors[:-1], page.page_id, separator, new_page.page_id
        )
        if pending_key >= separator:
            return self.store.get_internal(new_page.page_id)
        return self.store.get_internal(page.page_id)

    def _grow_new_root(
        self, left_child: PageId, separator: int, right_child: PageId
    ) -> None:
        left = self.store.get(left_child)
        left_key = left.min_key()  # both page kinds expose their minimum key
        level = 1 if left.kind is PageKind.LEAF else left.level + 1  # type: ignore[union-attr]
        new_root = self.store.allocate_internal(level=level)
        self._log_apply(
            AllocRecord(page_id=new_root.page_id, kind="internal", level=level)
        )
        self._log_apply(
            InternalFormatRecord(
                page_id=new_root.page_id,
                level=level,
                entries=((left_key, left_child), (separator, right_child)),
                low_mark=left_key,
            )
        )
        self.set_root(new_root.page_id)

    # -- deletion (free-at-empty) ------------------------------------------------------

    def delete(self, key: int, txn: Transaction | None = None) -> Record:
        """Delete ``key``; deallocate the leaf if it becomes empty [JS93]."""
        path = self.path_to_leaf(key)
        leaf = self.store.get_leaf(path[-1])
        record = leaf.find(key)
        if record is None:
            raise KeyNotFoundError(f"key {key} not in tree {self.name!r}")
        self._log_apply(
            LeafDeleteRecord(
                page_id=leaf.page_id, record=record, tree_name=self.name
            ),
            txn,
        )
        if self.frag_stats is not None:
            self.frag_stats.deletes += 1
            self.frag_stats.records -= 1
        if leaf.is_empty and len(path) > 1:
            self._free_at_empty(path)
        return record

    def _free_at_empty(self, path: list[PageId]) -> None:
        """Deallocate the empty leaf at path end, updating parents upward."""
        leaf = self.store.get_leaf(path[-1])
        self._unlink_side_pointers(leaf)
        child = leaf.page_id
        self._log_apply(FreeRecord(page_id=child))
        self.store.deallocate(child)
        if self.frag_stats is not None:
            self.frag_stats.leaves -= 1
        for depth in range(len(path) - 2, -1, -1):
            parent = self.store.get_internal(path[depth])
            entry_key, _ = parent.entries[parent.index_of_child(child)]
            self._log_apply(
                BaseEntryDeleteRecord(
                    page_id=parent.page_id, key=entry_key, child=child
                )
            )
            if parent.level == 1 and self.base_change_listener is not None:
                self.base_change_listener(
                    "delete", parent.page_id, entry_key, child
                )
            if not parent.is_empty or depth == 0:
                break
            child = parent.page_id
            self._log_apply(FreeRecord(page_id=child))
            self.store.deallocate(child)
        else:
            return
        # If the root lost all entries the tree is empty: restore the
        # empty-leaf-root form.
        root = self.store.get(self.root_id)
        if root.kind is PageKind.INTERNAL and root.is_empty:
            self._log_apply(FreeRecord(page_id=root.page_id))
            self.store.deallocate(root.page_id)
            new_root = self.store.allocate_leaf()
            self._log_apply(AllocRecord(page_id=new_root.page_id, kind="leaf"))
            self._log_apply(LeafFormatRecord(page_id=new_root.page_id, records=()))
            self.set_root(new_root.page_id)
            if self.frag_stats is not None:
                self.frag_stats.leaves += 1

    def _unlink_side_pointers(self, leaf: LeafPage) -> None:
        if self.side_pointers is SidePointerKind.NONE:
            return
        prev_id = self._previous_leaf_id(leaf)
        if prev_id != NO_PAGE:
            prev = self.store.get_leaf(prev_id)
            self._log_apply(
                SidePointerRecord(
                    page_id=prev_id,
                    next_leaf=leaf.next_leaf,
                    prev_leaf=prev.prev_leaf,
                )
            )
        if (
            self.side_pointers is SidePointerKind.TWO_WAY
            and leaf.next_leaf != NO_PAGE
        ):
            nxt = self.store.get_leaf(leaf.next_leaf)
            self._log_apply(
                SidePointerRecord(
                    page_id=nxt.page_id,
                    next_leaf=nxt.next_leaf,
                    prev_leaf=leaf.prev_leaf,
                )
            )

    def _previous_leaf_id(self, leaf: LeafPage) -> PageId:
        if self.side_pointers is SidePointerKind.TWO_WAY:
            return leaf.prev_leaf
        # One-way pointers: walk from the leftmost leaf.
        cursor = self.leftmost_leaf_id()
        if cursor == leaf.page_id:
            return NO_PAGE
        while cursor != NO_PAGE:
            page = self.store.get_leaf(cursor)
            if page.next_leaf == leaf.page_id:
                return cursor
            cursor = page.next_leaf
        return NO_PAGE

    # -- base-entry operations (pass-3 catch-up surface) -----------------------------

    def path_to_base(self, key: int) -> list[PageId]:
        """Page ids from the root down to the base page for ``key``.

        Descends internal levels only — the leaf the base entry points at
        may already be deallocated (a free-at-empty deletion travelling
        through the side file), so it must not be fetched.
        """
        root = self.store.get(self.root_id)
        if root.kind is PageKind.LEAF:
            raise BTreeError(f"tree {self.name!r} has no base level")
        path = [self.root_id]
        page = root
        while page.level > 1:  # type: ignore[union-attr]
            child = page.child_for(key)  # type: ignore[union-attr]
            path.append(child)
            page = self.store.get(child)
        return path

    def insert_base_entry(self, key: int, child: PageId) -> None:
        """Insert a (key, child) entry at the base level, splitting as
        needed.  Used when applying side-file insertions to the new tree
        (section 7.2): the entry points at an existing leaf page.
        """
        path = self.path_to_base(key)
        base = self.store.get_internal(path[-1])
        if base.is_full:
            base = self._split_internal(path, key)
        self._log_apply(
            BaseEntryInsertRecord(page_id=base.page_id, key=key, child=child)
        )

    def delete_base_entry(self, key: int, child: PageId) -> None:
        """Remove a (key, child) base entry (side-file deletion replay)."""
        path = self.path_to_base(key)
        base = self.store.get_internal(path[-1])
        index = base.index_of_child(child)
        if index < 0:
            raise KeyNotFoundError(
                f"base entry for child {child} not under key {key}"
            )
        entry_key = base.entries[index][0]
        self._log_apply(
            BaseEntryDeleteRecord(
                page_id=base.page_id, key=entry_key, child=child
            )
        )
        if base.is_empty:
            # Free-at-empty propagates up exactly as for leaves.
            self._free_empty_internal(path)

    def _free_empty_internal(self, path: list[PageId]) -> None:
        child = path[-1]
        self._log_apply(FreeRecord(page_id=child))
        self.store.deallocate(child)
        for depth in range(len(path) - 2, -1, -1):
            parent = self.store.get_internal(path[depth])
            entry_key, _ = parent.entries[parent.index_of_child(child)]
            self._log_apply(
                BaseEntryDeleteRecord(
                    page_id=parent.page_id, key=entry_key, child=child
                )
            )
            if not parent.is_empty or depth == 0:
                return
            child = parent.page_id
            self._log_apply(FreeRecord(page_id=child))
            self.store.deallocate(child)

    # -- invariants ----------------------------------------------------------------

    def validate(self) -> None:
        """Full structural check; raises TreeInvariantError on any breach."""
        root = self.store.get(self.root_id)
        leaves: list[PageId] = []
        if root.kind is PageKind.LEAF:
            leaves = [root.page_id]
        else:
            self._validate_internal(root, None, None, leaves)  # type: ignore[arg-type]
        # Record ordering across leaves.
        previous_max: int | None = None
        for leaf_id in leaves:
            leaf = self.store.get_leaf(leaf_id)
            if leaf.num_items > leaf.capacity:
                raise TreeInvariantError(f"leaf {leaf_id} over capacity")
            if not leaf.is_empty:
                if previous_max is not None and leaf.min_key() <= previous_max:
                    raise TreeInvariantError(
                        f"leaf {leaf_id} min {leaf.min_key()} <= previous max "
                        f"{previous_max}"
                    )
                previous_max = leaf.max_key()
            if self.store.free_map.is_free(leaf_id):
                raise TreeInvariantError(f"leaf {leaf_id} is reachable but free")
        self._validate_side_pointers(leaves)

    def _validate_internal(
        self,
        page: Page,
        low: int | None,
        high: int | None,
        leaves: list[PageId],
    ) -> None:
        if page.kind is PageKind.LEAF:
            leaf = page
            for record in leaf.records:  # type: ignore[union-attr]
                if low is not None and record.key < low:
                    raise TreeInvariantError(
                        f"leaf {page.page_id} key {record.key} below bound {low}"
                    )
                if high is not None and record.key >= high:
                    raise TreeInvariantError(
                        f"leaf {page.page_id} key {record.key} >= bound {high}"
                    )
            leaves.append(page.page_id)
            return
        internal = page
        entries = internal.entries  # type: ignore[union-attr]
        if not entries:
            raise TreeInvariantError(f"internal page {page.page_id} is empty")
        keys = [k for k, _ in entries]
        if keys != sorted(set(keys)):
            raise TreeInvariantError(
                f"internal page {page.page_id} keys not strictly sorted"
            )
        if self.store.free_map.is_free(page.page_id):
            raise TreeInvariantError(f"page {page.page_id} reachable but free")
        for index, (key, child) in enumerate(entries):
            # The leftmost child may hold keys below its entry key (routing
            # sends under-minimum keys to it), so it inherits the parent's
            # lower bound; every other child is bounded by its entry key.
            child_low = key if index > 0 else low
            child_high = entries[index + 1][0] if index + 1 < len(entries) else high
            child_page = self.store.get(child)
            expected_level = internal.level - 1  # type: ignore[union-attr]
            if child_page.kind is PageKind.INTERNAL:
                if child_page.level != expected_level:  # type: ignore[union-attr]
                    raise TreeInvariantError(
                        f"page {child}: level {child_page.level} != "  # type: ignore[union-attr]
                        f"expected {expected_level}"
                    )
            elif expected_level != 0:
                raise TreeInvariantError(
                    f"leaf {child} under level-{internal.level} parent"  # type: ignore[union-attr]
                )
            self._validate_internal(child_page, child_low, child_high, leaves)

    def _validate_side_pointers(self, leaves: list[PageId]) -> None:
        if self.side_pointers is SidePointerKind.NONE or len(leaves) < 1:
            return
        for here, there in zip(leaves, leaves[1:]):
            page = self.store.get_leaf(here)
            if page.next_leaf != there:
                raise TreeInvariantError(
                    f"leaf {here}.next_leaf = {page.next_leaf}, expected {there}"
                )
        last = self.store.get_leaf(leaves[-1])
        if last.next_leaf != NO_PAGE:
            raise TreeInvariantError(
                f"last leaf {leaves[-1]} has dangling next {last.next_leaf}"
            )
        if self.side_pointers is SidePointerKind.TWO_WAY:
            for prev, here in zip(leaves, leaves[1:]):
                page = self.store.get_leaf(here)
                if page.prev_leaf != prev:
                    raise TreeInvariantError(
                        f"leaf {here}.prev_leaf = {page.prev_leaf}, expected {prev}"
                    )
            first = self.store.get_leaf(leaves[0])
            if first.prev_leaf != NO_PAGE:
                raise TreeInvariantError("first leaf has a prev pointer")
