# reproflow: disable-file=lock-order -- Table 1's protocol admits these
# cycles by design (reader S lock-coupling vs. updater X descent, and
# side-file posting order): the paper resolves them at runtime with the
# waits-for deadlock detector, victim abort, undo + ReleaseAll and retry
# (section 5.2).  reprocheck explores exactly those schedules.
"""Reader and updater protocols (paper sections 4.1.2 and 4.1.3).

These are generator protocols for the discrete-event scheduler: every lock
acquisition, release, page fetch and back-off of the paper's pseudo-code is
a yield, so the scheduler can interleave them with the reorganizer and
measure blocking.

Reader (section 4.1.2)::

    IS lock the tree lock.
    S lock-couple down the tree.
    If it can't get an S lock on the leaf page, and the conflicting lock is
    RX: release the S lock on the base page, request an unconditional
    instant-duration RS lock on the parent base page, then re-request S on
    the base page and proceed.
    S lock the leaf page and read.
    Drop all locks at end of transaction.

Updater (section 4.1.3)::

    IX lock the tree lock.
    S lock-couple down the tree; X lock the leaf page (same RX back-off).
    If a split/consolidation is needed, Bayer-Schkolnick safe-node descent
    is used: restart with X lock-coupling, releasing ancestors of safe
    nodes.  "This will wait for a reorganizer when it attempts to get an
    X-lock on a base page."
    When updating a base page while internal reorganization is running,
    the section 7.2 side-file interaction applies: IX the side file first
    (an instant IX + restart if the switch holds it in X).

Both protocols re-resolve the tree's *lock name* at (re)start: after the
switch, new transactions lock the new tree's name (section 7.4).

Optimistic read path (``TreeConfig(optimistic_reads=True)``)::

    Descend from the root without any locks.  Before each page visit,
    probe the lock manager for a held RX lock (a reorganization pass is
    working on that page): if present, *downgrade* — abandon the optimistic
    attempt and run the full Table-1 locked protocol via the single
    fallback helper, preserving the paper's give-up / instant-RS semantics
    exactly where reader and reorganizer actually collide.  Otherwise
    capture the page's buffer-pool version stamp, pay the simulated fetch,
    and validate the stamp after resuming; a mismatch restarts the descent
    (bounded by the same ``_MAX_RESTARTS``).  Range scans validate the
    whole visited-leaf set at every successor step and once more when the
    scan completes, so the result equals a locked scan of the tree at the
    final validation instant.  See ``docs/optimistic_reads.md`` for the
    correctness argument.

    The only lock-manager traffic the optimistic path generates is the
    ``rx_is_held`` probe, which is not an acquire call — hence the large
    lock-traffic reduction on read-mostly workloads (BENCH_4).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.btree.tree import BPlusTree
from repro.db import Database
from repro.errors import RXConflictError, TransactionAborted
from repro.locks.modes import LockMode
from repro.locks.resources import (
    page_lock,
    record_lock,
    sidefile_key,
    sidefile_lock,
    tree_lock,
)
from repro.storage.page import PageId, PageKind, Record
from repro.txn.ops import (
    Acquire,
    Call,
    Downgrade,
    FetchPage,
    Release,
    ReleaseAll,
    Think,
)

IS, IX, S, X, RS = (
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.RS,
)

#: Retries before a protocol gives up (defensive; the paper's protocols
#: always make progress, but a pathological schedule should fail loudly).
_MAX_RESTARTS = 200


class OptimisticStats:
    """Counters for the optimistic read path.

    Deliberately *not* on :class:`repro.perf.PerfCounters`: its ``__slots__``
    are pinned so BENCH snapshot dicts stay byte-comparable across
    revisions (see the :mod:`repro.perf` docstring).  Same discipline as
    the batched-I/O layer keeping its counters on IOStats/LogStats.
    """

    __slots__ = ("searches", "scans", "restarts", "downgrades", "validations")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.searches = 0
        self.scans = 0
        self.restarts = 0
        self.downgrades = 0
        self.validations = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


#: Process-wide accounting for optimistic descents/scans (reset per bench).
OPTIMISTIC_STATS = OptimisticStats()

#: Sentinel returned by the scan's validated-successor step when a visited
#: leaf changed under the scan (distinct from None = end of chain).
_CONFLICT = object()


def _optimistic_enabled(db) -> bool:
    config = getattr(db, "config", None)
    return config is not None and getattr(config, "optimistic_reads", False)


def _lock_name(db: Database, tree_name: str) -> str:
    from repro.reorg.switch import current_lock_name

    return current_lock_name(db, tree_name)


def _s_couple_to_base(db: Database, tree: BPlusTree, key: int):
    """S lock-couple from the root to the base page for ``key``.

    Yields ops; returns (base_page_id, leaf_page_id) with S held on the
    base page only (ancestors released on the way down).  If the root is a
    leaf, returns (None, root_id) holding no page lock.
    """
    root_id = tree.root_id
    root = db.store.get(root_id)
    if root.kind is PageKind.LEAF:
        return None, root_id
    yield Acquire(page_lock(root_id), S)
    held = root_id
    page = root
    while page.level > 1:  # type: ignore[union-attr]
        child = page.child_for(key)  # type: ignore[union-attr]
        yield Acquire(page_lock(child), S)
        yield Release(page_lock(held), S)
        held = child
        page = db.store.get(child)
    leaf = page.child_for(key)  # type: ignore[union-attr]
    return held, leaf


def reader_search(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Point lookup; returns the record (or None).

    Dispatches on ``TreeConfig.optimistic_reads``: off (the default) runs
    the section 4.1.2 locked protocol byte-identically to the historical
    code; on, the latch-free validated descent.
    """
    if _optimistic_enabled(db):
        return (
            yield from _optimistic_reader_search(db, tree_name, key, think=think)
        )
    return (yield from _locked_reader_search(db, tree_name, key, think=think))


def _locked_reader_search(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Point lookup under the section 4.1.2 protocol; returns the record."""
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    result: Record | None = None
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), S)
            except RXConflictError:
                # The conflicting lock is RX: forgo, release the base-page
                # S lock, wait via an instant-duration RS on the base page,
                # then re-request S on the base page and retry the read.
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            if base is not None:
                yield Release(page_lock(base), S)
            page = yield FetchPage(leaf)
            if think:
                yield Think(think)
            result = page.get(key) if page.contains(key) else None
            break
        else:
            raise TransactionAborted(f"reader for key {key} starved")
    finally:
        yield ReleaseAll()
    return result


def reader_search_record_locking(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Point lookup with record-level locking (the section 4.1.2 aside):

    "Often an S lock is first requested on the page, then the read takes
    place, then the S lock on the page is downgraded to IS lock while an S
    lock on the read record is held to the end of transaction."
    """
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    result: Record | None = None
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), S)
            except RXConflictError:
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            if base is not None:
                yield Release(page_lock(base), S)
            page = yield FetchPage(leaf)
            result = page.get(key) if page.contains(key) else None
            if result is not None:
                # Hold the record S to end of transaction; shrink the page
                # lock to IS so concurrent record-level updaters of *other*
                # records on the page can proceed.
                yield Acquire(record_lock(key), S)
                yield Downgrade(page_lock(leaf), S, LockMode.IS)
            if think:
                yield Think(think)
            break
        else:
            raise TransactionAborted(f"reader for key {key} starved")
    finally:
        yield ReleaseAll()
    return result


def reader_range_scan(
    db: Database,
    tree_name: str,
    low: int,
    high: int,
    *,
    think_per_page: float = 0.0,
) -> Generator[Any, Any, list[Record]]:
    """Range scan [low, high]; dispatches like :func:`reader_search`."""
    if _optimistic_enabled(db):
        return (
            yield from _optimistic_reader_range_scan(
                db, tree_name, low, high, think_per_page=think_per_page
            )
        )
    return (
        yield from _locked_reader_range_scan(
            db, tree_name, low, high, think_per_page=think_per_page
        )
    )


def _locked_reader_range_scan(
    db: Database,
    tree_name: str,
    low: int,
    high: int,
    *,
    think_per_page: float = 0.0,
) -> Generator[Any, Any, list[Record]]:
    """Range scan: S lock-couple to the first leaf, then walk successors,
    S locking each leaf before reading it (locks held to end of scan to
    keep the read set stable)."""
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    out: list[Record] = []
    try:
        for _ in range(_MAX_RESTARTS):
            out.clear()
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, low)
            restart = False
            while True:
                try:
                    yield Acquire(page_lock(leaf), S)
                except RXConflictError:
                    if base is not None:
                        yield Release(page_lock(base), S)
                        yield Acquire(page_lock(base), RS, instant=True)
                    restart = True
                    break
                if base is not None:
                    yield Release(page_lock(base), S)
                    base = None
                page = yield FetchPage(leaf)
                if think_per_page:
                    yield Think(think_per_page)
                done = False
                for record in page.iter_from(low):
                    if record.key > high:
                        done = True
                        break
                    out.append(record)
                if done:
                    break
                next_leaf = yield Call(
                    lambda leaf_id=leaf: _successor_leaf(db, tree_name, leaf_id)
                )
                if next_leaf is None:
                    break
                leaf = next_leaf
            if not restart:
                break
        else:
            raise TransactionAborted("range scan starved")
    finally:
        yield ReleaseAll()
    return out


def _successor_leaf(db: Database, tree_name: str, leaf_id: PageId) -> PageId | None:
    tree = db.tree(tree_name)
    leaf = db.store.get_leaf(leaf_id)
    next_id = tree.successor_leaf_id(leaf)
    return next_id if next_id >= 0 else None


# -- optimistic read path ---------------------------------------------------


def _optimistic_downgrade(db, tree_name, locked_protocol, *args, **kwargs):
    """The single Table-1 fallback site of the optimistic read path.

    When a validating reader observes a page under RX — a pass-1 group
    move or the pass-3 switch in flight — it abandons the lock-free
    attempt and runs the full locked protocol, whose give-up / instant-RS
    handling then applies unchanged.  Every locked fallback MUST go
    through this helper (enforced by the ``optimistic-lock-free``
    reprolint rule); optimistic code never touches the lock manager
    directly except for the read-only ``rx_is_held`` probe.
    """
    OPTIMISTIC_STATS.downgrades += 1
    return (yield from locked_protocol(db, tree_name, *args, **kwargs))


def _optimistic_reader_search(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Latch-free point lookup: validated descent, no lock acquisition.

    DES atomicity makes the validation airtight: the RX probe, the version
    capture and the page fetch of a ``FetchPage`` all execute in the same
    scheduler step, so the only window a mutation can slip into is the
    simulated fetch delay — exactly what the post-resume validation
    covers.  The child-pointer read after a successful validation is
    likewise atomic with the next capture.
    """
    store = db.store
    locks = db.locks
    OPTIMISTIC_STATS.searches += 1
    result: Record | None = None
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            pid = tree.root_id
            restart = False
            while True:
                if locks.rx_is_held(page_lock(pid)):
                    result = yield from _optimistic_downgrade(
                        db, tree_name, _locked_reader_search, key, think=think
                    )
                    return result
                ver = store.version_of(pid)
                page = yield FetchPage(pid)
                OPTIMISTIC_STATS.validations += 1
                if store.version_of(pid) != ver:
                    OPTIMISTIC_STATS.restarts += 1
                    if locks.rx_is_held(page_lock(pid)):
                        result = yield from _optimistic_downgrade(
                            db, tree_name, _locked_reader_search, key,
                            think=think,
                        )
                        return result
                    restart = True
                    break
                step = tree.descend_step(page, key)
                if step is None:
                    # Reached the leaf.  A think pause re-opens the race
                    # window, so re-validate before the read; the read
                    # itself is atomic with the validation.
                    if think:
                        yield Think(think)
                        if store.version_of(pid) != ver:
                            OPTIMISTIC_STATS.restarts += 1
                            restart = True
                            break
                    result = page.get(key) if page.contains(key) else None
                    return result
                pid = step
            if not restart:
                break
        else:
            raise TransactionAborted(f"optimistic reader for key {key} starved")
    finally:
        yield ReleaseAll()
    return result


def _optimistic_reader_range_scan(
    db: Database,
    tree_name: str,
    low: int,
    high: int,
    *,
    think_per_page: float = 0.0,
) -> Generator[Any, Any, list[Record]]:
    """Latch-free range scan over the leaf chain.

    The locked scan keeps its read set stable by holding every visited
    leaf's S lock to the end of the scan; the optimistic scan gets the
    same guarantee by *re-validating the whole visited-leaf set* — at
    every successor step (inside the synchronous ``Call``, atomic with
    the successor computation) and once more when the chain walk
    completes.  If every visited leaf still carries the version it was
    read at, the collected records equal a locked scan of the tree at
    that final instant; any interleaved mutation of a visited leaf bumps
    its stamp and restarts the scan from scratch.
    """
    store = db.store
    locks = db.locks
    OPTIMISTIC_STATS.scans += 1
    out: list[Record] = []
    try:
        for _ in range(_MAX_RESTARTS):
            out.clear()
            tree = db.tree(tree_name)
            pid = tree.root_id
            restart = False
            page = None
            ver = 0
            # Descent to the leaf containing `low`.
            while True:
                if locks.rx_is_held(page_lock(pid)):
                    out = yield from _optimistic_downgrade(
                        db, tree_name, _locked_reader_range_scan, low, high,
                        think_per_page=think_per_page,
                    )
                    return out
                ver = store.version_of(pid)
                page = yield FetchPage(pid)
                OPTIMISTIC_STATS.validations += 1
                if store.version_of(pid) != ver:
                    OPTIMISTIC_STATS.restarts += 1
                    if locks.rx_is_held(page_lock(pid)):
                        out = yield from _optimistic_downgrade(
                            db, tree_name, _locked_reader_range_scan, low,
                            high, think_per_page=think_per_page,
                        )
                        return out
                    restart = True
                    break
                step = tree.descend_step(page, low)
                if step is None:
                    break
                pid = step
            if restart:
                continue
            # Leaf-chain walk; `visited` is the optimistic read set.
            visited: list[tuple[PageId, int]] = [(pid, ver)]
            while True:
                if think_per_page:
                    yield Think(think_per_page)
                    if not _versions_current(store, visited):
                        OPTIMISTIC_STATS.restarts += 1
                        restart = True
                        break
                done = False
                for record in page.iter_from(low):
                    if record.key > high:
                        done = True
                        break
                    out.append(record)
                if done:
                    break
                next_leaf = yield Call(
                    lambda leaf_id=pid, read_set=tuple(visited): (
                        _validated_successor(db, tree_name, leaf_id, read_set)
                    )
                )
                if next_leaf is _CONFLICT:
                    OPTIMISTIC_STATS.restarts += 1
                    restart = True
                    break
                if next_leaf is None:
                    break
                pid = next_leaf
                if locks.rx_is_held(page_lock(pid)):
                    out = yield from _optimistic_downgrade(
                        db, tree_name, _locked_reader_range_scan, low, high,
                        think_per_page=think_per_page,
                    )
                    return out
                ver = store.version_of(pid)
                page = yield FetchPage(pid)
                OPTIMISTIC_STATS.validations += 1
                if store.version_of(pid) != ver:
                    OPTIMISTIC_STATS.restarts += 1
                    restart = True
                    break
                visited.append((pid, ver))
            if restart:
                continue
            # Final whole-set validation: no yield between this check and
            # returning `out`, so the scan linearizes here.
            if _versions_current(store, visited):
                break
            OPTIMISTIC_STATS.restarts += 1
        else:
            raise TransactionAborted("optimistic range scan starved")
    finally:
        yield ReleaseAll()
    return out


def _versions_current(store, visited) -> bool:
    version_of = store.version_of
    return all(version_of(pid) == ver for pid, ver in visited)


def _validated_successor(db, tree_name, leaf_id, read_set):
    """Successor leaf id, atomically validated against the scan's read set.

    Runs synchronously inside a ``Call`` — one scheduler step — so the
    whole-set validation and the successor computation cannot interleave
    with a mutation.  Returns ``_CONFLICT`` when any visited leaf changed.
    """
    if not _versions_current(db.store, read_set):
        return _CONFLICT
    return _successor_leaf(db, tree_name, leaf_id)


def updater_insert(
    db: Database,
    tree_name: str,
    record: Record,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, bool]:
    """Insert under the section 4.1.3 protocol; returns True on success."""
    return (
        yield from _updater(db, tree_name, record.key, ("insert", record), think)
    )


def updater_delete(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, bool]:
    """Delete under the section 4.1.3 protocol; returns True on success."""
    return (yield from _updater(db, tree_name, key, ("delete", key), think))


def _updater(db, tree_name, key, action, think):
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IX)
    success = False
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), X)
            except RXConflictError:
                # Same back-off as the reader, via an instant RS.
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            needs_structure = yield Call(
                lambda t=tree: _needs_structural_change(db, t, key, action)
            )
            if not needs_structure:
                if base is not None:
                    yield Release(page_lock(base), S)
                if think:
                    yield Think(think)
                success = yield Call(lambda t=tree: _apply_action(t, action))
                break
            # Bayer-Schkolnick: release all page locks and restart with
            # X lock-coupling down to the base page; "this will wait for a
            # reorganizer when it attempts to get an X-lock on a base page".
            yield Release(page_lock(leaf), X)
            if base is not None:
                yield Release(page_lock(base), S)
            outcome = yield from _structural_update(db, tree_name, key, action, think)
            if outcome is False:
                continue  # switch invalidated the path; retry descent
            success = bool(outcome)
            break
        else:
            raise TransactionAborted(f"updater for key {key} starved")
    finally:
        yield ReleaseAll()
    return success


def _structural_update(db, tree_name, key, action, think):
    """X lock-couple to the base page and perform a split/consolidation.

    Returns True when the update was applied; False means the descent must
    be retried (switch in progress invalidated the path).
    """
    tree = db.tree(tree_name)
    root_id = tree.root_id
    root = db.store.get(root_id)
    path: list[PageId] = []
    if root.kind is not PageKind.LEAF:
        yield Acquire(page_lock(root_id), X)
        path.append(root_id)
        page = root
        while page.level > 1:  # type: ignore[union-attr]
            child = page.child_for(key)  # type: ignore[union-attr]
            yield Acquire(page_lock(child), X)
            path.append(child)
            child_page = db.store.get(child)
            # Safe-node optimization [BS77]: a non-full internal page
            # absorbs any split below it, so ancestors can be released.
            if not child_page.is_full:
                for ancestor in path[:-1]:
                    yield Release(page_lock(ancestor), X)
                path = [child]
            page = child_page
        leaf = page.child_for(key)  # type: ignore[union-attr]
        try:
            yield Acquire(page_lock(leaf), X)
        except RXConflictError:
            # Forgo and back off exactly as in the plain descent.
            base = path[-1] if path else None
            for page_id in path:
                yield Release(page_lock(page_id), X)
            if base is not None:
                yield Acquire(page_lock(base), RS, instant=True)
            return False
    # Section 7.2: while internal reorganization runs, a base-page update
    # must first IX the side file; if the side file is X-held the switch is
    # in progress -> instant IX, then restart against the new tree.
    if db.pass3.reorg_bit:
        sidefile = sidefile_lock(getattr(db, "sidefile_name", ""))
        blocked = yield Call(lambda: _sidefile_switch_in_progress(db))
        if blocked:
            yield Acquire(sidefile, IX, instant=True)
            for page_id in path:
                yield Release(page_lock(page_id), X)
            return False
        yield Acquire(sidefile, IX)
        # Record-level locking on the side-file entry being made (7.2).
        yield Acquire(sidefile_key(key), X)
    if think:
        yield Think(think)
    applied = yield Call(lambda t=tree: _apply_action(t, action))
    return True if applied else None


def _sidefile_switch_in_progress(db: Database) -> bool:
    holders = db.locks.holders_of(sidefile_lock(getattr(db, "sidefile_name", "")))
    return any(X in modes for modes in holders.values())


def _needs_structural_change(db, tree, key, action) -> bool:
    kind, payload = action
    leaf = tree.leaf_for(key)
    if kind == "insert":
        return leaf.is_full
    return leaf.num_items == 1 and leaf.page_id != tree.root_id


def _apply_action(tree, action) -> bool:
    from repro.errors import DuplicateKeyError, KeyNotFoundError

    kind, payload = action
    try:
        if kind == "insert":
            tree.insert(payload)
        else:
            tree.delete(payload)
        return True
    except (DuplicateKeyError, KeyNotFoundError):
        return False
