"""Reader and updater protocols (paper sections 4.1.2 and 4.1.3).

These are generator protocols for the discrete-event scheduler: every lock
acquisition, release, page fetch and back-off of the paper's pseudo-code is
a yield, so the scheduler can interleave them with the reorganizer and
measure blocking.

Reader (section 4.1.2)::

    IS lock the tree lock.
    S lock-couple down the tree.
    If it can't get an S lock on the leaf page, and the conflicting lock is
    RX: release the S lock on the base page, request an unconditional
    instant-duration RS lock on the parent base page, then re-request S on
    the base page and proceed.
    S lock the leaf page and read.
    Drop all locks at end of transaction.

Updater (section 4.1.3)::

    IX lock the tree lock.
    S lock-couple down the tree; X lock the leaf page (same RX back-off).
    If a split/consolidation is needed, Bayer-Schkolnick safe-node descent
    is used: restart with X lock-coupling, releasing ancestors of safe
    nodes.  "This will wait for a reorganizer when it attempts to get an
    X-lock on a base page."
    When updating a base page while internal reorganization is running,
    the section 7.2 side-file interaction applies: IX the side file first
    (an instant IX + restart if the switch holds it in X).

Both protocols re-resolve the tree's *lock name* at (re)start: after the
switch, new transactions lock the new tree's name (section 7.4).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.btree.tree import BPlusTree
from repro.db import Database
from repro.errors import RXConflictError, TransactionAborted
from repro.locks.modes import LockMode
from repro.locks.resources import (
    page_lock,
    record_lock,
    sidefile_key,
    sidefile_lock,
    tree_lock,
)
from repro.storage.page import PageId, PageKind, Record
from repro.txn.ops import (
    Acquire,
    Call,
    Downgrade,
    FetchPage,
    Release,
    ReleaseAll,
    Think,
)

IS, IX, S, X, RS = (
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.RS,
)

#: Retries before a protocol gives up (defensive; the paper's protocols
#: always make progress, but a pathological schedule should fail loudly).
_MAX_RESTARTS = 200


def _lock_name(db: Database, tree_name: str) -> str:
    from repro.reorg.switch import current_lock_name

    return current_lock_name(db, tree_name)


def _s_couple_to_base(db: Database, tree: BPlusTree, key: int):
    """S lock-couple from the root to the base page for ``key``.

    Yields ops; returns (base_page_id, leaf_page_id) with S held on the
    base page only (ancestors released on the way down).  If the root is a
    leaf, returns (None, root_id) holding no page lock.
    """
    root_id = tree.root_id
    root = db.store.get(root_id)
    if root.kind is PageKind.LEAF:
        return None, root_id
    yield Acquire(page_lock(root_id), S)
    held = root_id
    page = root
    while page.level > 1:  # type: ignore[union-attr]
        child = page.child_for(key)  # type: ignore[union-attr]
        yield Acquire(page_lock(child), S)
        yield Release(page_lock(held), S)
        held = child
        page = db.store.get(child)
    leaf = page.child_for(key)  # type: ignore[union-attr]
    return held, leaf


def reader_search(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Point lookup under the section 4.1.2 protocol; returns the record."""
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    result: Record | None = None
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), S)
            except RXConflictError:
                # The conflicting lock is RX: forgo, release the base-page
                # S lock, wait via an instant-duration RS on the base page,
                # then re-request S on the base page and retry the read.
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            if base is not None:
                yield Release(page_lock(base), S)
            page = yield FetchPage(leaf)
            if think:
                yield Think(think)
            result = page.get(key) if page.contains(key) else None
            break
        else:
            raise TransactionAborted(f"reader for key {key} starved")
    finally:
        yield ReleaseAll()
    return result


def reader_search_record_locking(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, Record | None]:
    """Point lookup with record-level locking (the section 4.1.2 aside):

    "Often an S lock is first requested on the page, then the read takes
    place, then the S lock on the page is downgraded to IS lock while an S
    lock on the read record is held to the end of transaction."
    """
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    result: Record | None = None
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), S)
            except RXConflictError:
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            if base is not None:
                yield Release(page_lock(base), S)
            page = yield FetchPage(leaf)
            result = page.get(key) if page.contains(key) else None
            if result is not None:
                # Hold the record S to end of transaction; shrink the page
                # lock to IS so concurrent record-level updaters of *other*
                # records on the page can proceed.
                yield Acquire(record_lock(key), S)
                yield Downgrade(page_lock(leaf), S, LockMode.IS)
            if think:
                yield Think(think)
            break
        else:
            raise TransactionAborted(f"reader for key {key} starved")
    finally:
        yield ReleaseAll()
    return result


def reader_range_scan(
    db: Database,
    tree_name: str,
    low: int,
    high: int,
    *,
    think_per_page: float = 0.0,
) -> Generator[Any, Any, list[Record]]:
    """Range scan: S lock-couple to the first leaf, then walk successors,
    S locking each leaf before reading it (locks held to end of scan to
    keep the read set stable)."""
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IS)
    out: list[Record] = []
    try:
        for _ in range(_MAX_RESTARTS):
            out.clear()
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, low)
            restart = False
            while True:
                try:
                    yield Acquire(page_lock(leaf), S)
                except RXConflictError:
                    if base is not None:
                        yield Release(page_lock(base), S)
                        yield Acquire(page_lock(base), RS, instant=True)
                    restart = True
                    break
                if base is not None:
                    yield Release(page_lock(base), S)
                    base = None
                page = yield FetchPage(leaf)
                if think_per_page:
                    yield Think(think_per_page)
                done = False
                for record in page.iter_from(low):
                    if record.key > high:
                        done = True
                        break
                    out.append(record)
                if done:
                    break
                next_leaf = yield Call(
                    lambda leaf_id=leaf: _successor_leaf(db, tree_name, leaf_id)
                )
                if next_leaf is None:
                    break
                leaf = next_leaf
            if not restart:
                break
        else:
            raise TransactionAborted("range scan starved")
    finally:
        yield ReleaseAll()
    return out


def _successor_leaf(db: Database, tree_name: str, leaf_id: PageId) -> PageId | None:
    tree = db.tree(tree_name)
    leaf = db.store.get_leaf(leaf_id)
    next_id = tree.successor_leaf_id(leaf)
    return next_id if next_id >= 0 else None


def updater_insert(
    db: Database,
    tree_name: str,
    record: Record,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, bool]:
    """Insert under the section 4.1.3 protocol; returns True on success."""
    return (
        yield from _updater(db, tree_name, record.key, ("insert", record), think)
    )


def updater_delete(
    db: Database,
    tree_name: str,
    key: int,
    *,
    think: float = 0.0,
) -> Generator[Any, Any, bool]:
    """Delete under the section 4.1.3 protocol; returns True on success."""
    return (yield from _updater(db, tree_name, key, ("delete", key), think))


def _updater(db, tree_name, key, action, think):
    name = _lock_name(db, tree_name)
    yield Acquire(tree_lock(name), IX)
    success = False
    try:
        for _ in range(_MAX_RESTARTS):
            tree = db.tree(tree_name)
            base, leaf = yield from _s_couple_to_base(db, tree, key)
            try:
                yield Acquire(page_lock(leaf), X)
            except RXConflictError:
                # Same back-off as the reader, via an instant RS.
                if base is not None:
                    yield Release(page_lock(base), S)
                    yield Acquire(page_lock(base), RS, instant=True)
                    yield Acquire(page_lock(base), S)
                    yield Release(page_lock(base), S)
                continue
            needs_structure = yield Call(
                lambda t=tree: _needs_structural_change(db, t, key, action)
            )
            if not needs_structure:
                if base is not None:
                    yield Release(page_lock(base), S)
                if think:
                    yield Think(think)
                success = yield Call(lambda t=tree: _apply_action(t, action))
                break
            # Bayer-Schkolnick: release all page locks and restart with
            # X lock-coupling down to the base page; "this will wait for a
            # reorganizer when it attempts to get an X-lock on a base page".
            yield Release(page_lock(leaf), X)
            if base is not None:
                yield Release(page_lock(base), S)
            outcome = yield from _structural_update(db, tree_name, key, action, think)
            if outcome is False:
                continue  # switch invalidated the path; retry descent
            success = bool(outcome)
            break
        else:
            raise TransactionAborted(f"updater for key {key} starved")
    finally:
        yield ReleaseAll()
    return success


def _structural_update(db, tree_name, key, action, think):
    """X lock-couple to the base page and perform a split/consolidation.

    Returns True when the update was applied; False means the descent must
    be retried (switch in progress invalidated the path).
    """
    tree = db.tree(tree_name)
    root_id = tree.root_id
    root = db.store.get(root_id)
    path: list[PageId] = []
    if root.kind is not PageKind.LEAF:
        yield Acquire(page_lock(root_id), X)
        path.append(root_id)
        page = root
        while page.level > 1:  # type: ignore[union-attr]
            child = page.child_for(key)  # type: ignore[union-attr]
            yield Acquire(page_lock(child), X)
            path.append(child)
            child_page = db.store.get(child)
            # Safe-node optimization [BS77]: a non-full internal page
            # absorbs any split below it, so ancestors can be released.
            if not child_page.is_full:
                for ancestor in path[:-1]:
                    yield Release(page_lock(ancestor), X)
                path = [child]
            page = child_page
        leaf = page.child_for(key)  # type: ignore[union-attr]
        try:
            yield Acquire(page_lock(leaf), X)
        except RXConflictError:
            # Forgo and back off exactly as in the plain descent.
            base = path[-1] if path else None
            for page_id in path:
                yield Release(page_lock(page_id), X)
            if base is not None:
                yield Acquire(page_lock(base), RS, instant=True)
            return False
    # Section 7.2: while internal reorganization runs, a base-page update
    # must first IX the side file; if the side file is X-held the switch is
    # in progress -> instant IX, then restart against the new tree.
    if db.pass3.reorg_bit:
        sidefile = sidefile_lock(getattr(db, "sidefile_name", ""))
        blocked = yield Call(lambda: _sidefile_switch_in_progress(db))
        if blocked:
            yield Acquire(sidefile, IX, instant=True)
            for page_id in path:
                yield Release(page_lock(page_id), X)
            return False
        yield Acquire(sidefile, IX)
        # Record-level locking on the side-file entry being made (7.2).
        yield Acquire(sidefile_key(key), X)
    if think:
        yield Think(think)
    applied = yield Call(lambda t=tree: _apply_action(t, action))
    return True if applied else None


def _sidefile_switch_in_progress(db: Database) -> bool:
    holders = db.locks.holders_of(sidefile_lock(getattr(db, "sidefile_name", "")))
    return any(X in modes for modes in holders.values())


def _needs_structural_change(db, tree, key, action) -> bool:
    kind, payload = action
    leaf = tree.leaf_for(key)
    if kind == "insert":
        return leaf.is_full
    return leaf.num_items == 1 and leaf.page_id != tree.root_id


def _apply_action(tree, action) -> bool:
    from repro.errors import DuplicateKeyError, KeyNotFoundError

    kind, payload = action
    try:
        if kind == "insert":
            tree.insert(payload)
        else:
            tree.delete(payload)
        return True
    except (DuplicateKeyError, KeyNotFoundError):
        return False
