"""The primary B+-tree: structure, bulk load, statistics, protocols."""

from repro.btree.bulkload import build_leaf_level, build_upper_levels, bulk_load
from repro.btree.stats import (
    DescentCost,
    ScanCost,
    TreeStats,
    collect_stats,
    measure_descent,
    measure_range_scan,
)
from repro.btree.tree import BPlusTree

__all__ = [
    "BPlusTree",
    "DescentCost",
    "ScanCost",
    "TreeStats",
    "build_leaf_level",
    "build_upper_levels",
    "bulk_load",
    "collect_stats",
    "measure_descent",
    "measure_range_scan",
]
