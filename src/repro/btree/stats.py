"""Tree statistics and scan-cost measurement.

These functions quantify the degradation the paper's introduction motivates
(sparse leaves, leaves out of disk order) and the improvement each
reorganization pass buys.  They power the F1/E6 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.storage.page import PageKind


@dataclass(frozen=True)
class TreeStats:
    """Snapshot of the structural health of a tree."""

    height: int
    record_count: int
    leaf_count: int
    internal_count: int
    #: Mean leaf occupancy in [0, 1] — the paper's fill factor f.
    leaf_fill: float
    #: Fraction of consecutive leaf pairs (in key order) whose page ids are
    #: also consecutive on disk; 1.0 = perfectly clustered.
    disk_order_fraction: float
    #: Fraction of consecutive leaf pairs in strictly ascending disk order
    #: (not necessarily adjacent); 1.0 = scan never seeks backwards.
    ascending_fraction: float


def collect_stats(tree: BPlusTree) -> TreeStats:
    leaf_ids = tree.leaf_ids_in_key_order()
    internal_count = 0
    stack = [tree.root_id]
    while stack:
        page = tree.store.get(stack.pop())
        if page.kind is PageKind.INTERNAL:
            internal_count += 1
            stack.extend(page.children())  # type: ignore[union-attr]
    fills = []
    records = 0
    for leaf_id in leaf_ids:
        leaf = tree.store.get_leaf(leaf_id)
        fills.append(leaf.fill_fraction())
        records += leaf.num_items
    pairs = list(zip(leaf_ids, leaf_ids[1:]))
    adjacent = sum(1 for a, b in pairs if b == a + 1)
    ascending = sum(1 for a, b in pairs if b > a)
    return TreeStats(
        height=tree.height(),
        record_count=records,
        leaf_count=len(leaf_ids),
        internal_count=internal_count,
        leaf_fill=sum(fills) / len(fills) if fills else 0.0,
        disk_order_fraction=adjacent / len(pairs) if pairs else 1.0,
        ascending_fraction=ascending / len(pairs) if pairs else 1.0,
    )


@dataclass(frozen=True)
class ScanCost:
    """I/O accounting of one range scan."""

    pages_read: int
    sequential_reads: int
    seeks: int
    read_cost: float
    records_returned: int


@dataclass(frozen=True)
class DescentCost:
    """I/O accounting of a batch of cold root-to-leaf descents."""

    lookups: int
    pages_read: int
    sequential_reads: int
    seeks: int
    read_cost: float


def measure_descent(tree: BPlusTree, keys: list[int]) -> DescentCost:
    """Run cold point lookups and report their descent I/O cost.

    The placement-policy counterpart of :func:`measure_range_scan`: every
    page of each root-to-leaf path is read straight from the simulated
    disk, billed through the shared disk head, with nothing cached between
    lookups (a buffer pool would quickly pin the upper levels and hide the
    layout entirely).  What the number isolates is how the *placement* of
    the internal levels interacts with the head: under key-order placement
    no hop of a descent is sequential, while a van Emde Boas layout makes
    parent-to-first-child hops adjacent.  The tree walk that resolves each
    path goes through the buffer pool first and is not charged.
    """
    disk = tree.store.disk
    paths = [tree.path_to_leaf(key) for key in keys]
    before = disk.stats.snapshot()
    disk.reset_read_position()
    for path in paths:
        for page_id in path:
            if disk.has_image(page_id):
                disk.read(page_id)  # reprolint: disable=buffer-bypass,no-raw-disk-write -- read-only I/O cost model; counts raw disk reads on purpose
    spent = disk.stats.delta(before)
    return DescentCost(
        lookups=len(paths),
        pages_read=spent["reads"],
        sequential_reads=spent["sequential_reads"],
        seeks=spent["seeks"],
        read_cost=spent["read_cost"],
    )


def measure_range_scan(tree: BPlusTree, low: int, high: int) -> ScanCost:
    """Run a range scan against cold storage and report its I/O cost.

    The buffer pool is bypassed by reading leaf pages straight from the
    simulated disk, which models the motivating scenario (a scan large
    enough that caching does not help) and keeps the seek accounting pure.
    """
    disk = tree.store.disk
    # Resolve the leaf order first: the tree walk may fault pages into the
    # buffer pool, and those reads must not be charged to the scan.
    leaf_ids = tree.leaf_ids_in_key_order()
    before = disk.stats.snapshot()
    disk.reset_read_position()

    # Walk the leaves in key order through the disk, charging I/O per leaf.
    # The overlap pre-check uses peek() (uncounted): it models the key
    # bounds a scan learns from the parent level, which is in memory.
    records = 0
    for leaf_id in leaf_ids:
        preview = (
            disk.peek(leaf_id)
            if disk.has_image(leaf_id)
            else tree.store.get_leaf(leaf_id)
        )
        if preview.is_empty:
            continue
        if preview.min_key() > high or preview.max_key() < low:
            continue
        page = (
            disk.read(leaf_id)  # reprolint: disable=buffer-bypass,no-raw-disk-write -- read-only I/O cost model; counts raw disk reads on purpose
            if disk.has_image(leaf_id)
            else preview
        )
        for record in page.records:  # type: ignore[union-attr]
            if low <= record.key <= high:
                records += 1
    spent = disk.stats.delta(before)
    return ScanCost(
        pages_read=spent["reads"],
        sequential_reads=spent["sequential_reads"],
        seeks=spent["seeks"],
        read_cost=spent["read_cost"],
        records_returned=records,
    )
