"""repro — On-line Reorganization of Sparsely-populated B+-trees.

A from-scratch Python reproduction of Salzberg & Zou (SIGMOD 1996): the
three-pass on-line reorganization algorithm, the R/RX/RS lock protocol,
forward recovery, the side-file catch-up protocol, and the switch to the new
tree — together with the substrates they run on (simulated disk, buffer pool
with careful writing, write-ahead log, lock manager, discrete-event
transaction scheduler) and a Tandem-style baseline for comparison.

Quickstart::

    from repro import Database, Record, Reorganizer, ReorgConfig, TreeConfig

    db = Database(TreeConfig(leaf_capacity=64))
    tree = db.bulk_load_tree([Record(k, f"v{k}") for k in range(10_000)])
    # ... workload degrades the tree ...
    report = Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.btree.stats import (
    DescentCost,
    ScanCost,
    TreeStats,
    collect_stats,
    measure_descent,
    measure_range_scan,
)
from repro.btree.tree import BPlusTree
from repro.config import (
    DEFAULT_REORG_CONFIG,
    DEFAULT_TREE_CONFIG,
    FreeSpacePolicy,
    PlacementPolicyKind,
    ReorgConfig,
    SidePointerKind,
    TreeConfig,
)
from repro.db import Database
from repro.errors import ReproError
from repro.locks.modes import LockMode
from repro.reorg.reorganizer import Reorganizer, ReorgReport
from repro.storage.page import Record

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "DEFAULT_REORG_CONFIG",
    "DEFAULT_TREE_CONFIG",
    "Database",
    "DescentCost",
    "FreeSpacePolicy",
    "LockMode",
    "PlacementPolicyKind",
    "Record",
    "ReorgConfig",
    "ReorgReport",
    "Reorganizer",
    "ReproError",
    "ScanCost",
    "SidePointerKind",
    "TreeConfig",
    "TreeStats",
    "collect_stats",
    "measure_descent",
    "measure_range_scan",
    "__version__",
]
