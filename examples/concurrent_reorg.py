#!/usr/bin/env python3
"""Concurrent workload during reorganization: paper vs. Tandem baseline.

Reproduces the paper's section 8 concurrency claim live: the same stream
of readers and updaters runs (a) alone, (b) against the paper's three-pass
reorganizer with its R/RX/RS locking, and (c) against the [Smi90]-style
baseline that X-locks the whole file for every block operation.

Everything runs on the deterministic discrete-event scheduler, so the
numbers are exactly reproducible.

Run:  python examples/concurrent_reorg.py
"""

from repro.config import ReorgConfig, TreeConfig
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.workload import WorkloadConfig


def main() -> None:
    setup = ExperimentSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
            buffer_pool_pages=512,
        ),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=300,
            key_space=3000,
            mean_interarrival=0.25,
            read_fraction=0.6,
            scan_fraction=0.1,
            insert_fraction=0.15,
            delete_fraction=0.15,
        ),
        n_records=3000,
        fill_after=0.3,
        op_duration=0.3,
    )

    print(
        f"{'reorganizer':<12} {'blocked':>8} {'rx-backoffs':>12} "
        f"{'mean wait':>10} {'p95 wait':>9} {'mean lat':>9} {'reorg time':>11}"
    )
    for mode in ("none", "paper", "smith90"):
        db, m = run_concurrent_experiment(setup, reorganizer=mode)
        db.tree().validate()
        print(
            f"{mode:<12} {m.blocked_txns:>8} {m.rx_backoffs:>12} "
            f"{m.mean_wait:>10.3f} {m.p95_wait:>9.3f} "
            f"{m.mean_latency:>9.3f} {m.reorg_elapsed:>11.1f}"
        )

    print(
        "\nThe paper's fine-granularity locking (R on one base page, RX on"
        "\nthe unit's leaves, X on the base page only while posting keys)"
        "\nleaves the workload almost untouched; the whole-file X lock of"
        "\nthe [Smi90] baseline blocks most of it."
    )


if __name__ == "__main__":
    main()
