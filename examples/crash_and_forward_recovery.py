#!/usr/bin/env python3
"""Forward recovery: a crash in the middle of reorganization loses nothing.

The script crashes the system part-way through pass 1, runs standard
redo/undo recovery, and then lets the reorganizer *finish* the interrupted
unit — the paper's Forward Recovery (section 5.1) — instead of rolling it
back.  For contrast, the same crash is replayed with the [Smi90]-style
rollback policy, and the preserved work is compared.

Run:  python examples/crash_and_forward_recovery.py
"""

import random

from repro.baseline.smith90 import Smith90Reorganizer
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, count_completed_units, crash_recover
from repro.storage.page import Record


def build_degraded_db(seed: int = 7) -> Database:
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in range(4000)], leaf_fill=1.0,
        internal_fill=0.5,
    )
    rng = random.Random(seed)
    for key in rng.sample(range(4000), 2800):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    return db


def main() -> None:
    crash_at = 120  # log appends into the reorganization

    # ---- the paper's policy: forward recovery -------------------------------
    db = build_degraded_db()
    keys_expected = [r.key for r in db.tree().items()]
    reorg = Reorganizer(db, db.tree(), ReorgConfig())
    print(f"Running pass 1 with a crash injected after {crash_at} log appends ...")
    try:
        with LogCrashInjector(db.log, after_records=crash_at):
            reorg.run()
    except CrashPoint:
        pass
    units_at_crash = count_completed_units(db.log)
    print(f"  units completed before the crash : {units_at_crash}")

    recovery = crash_recover(db)
    pending = recovery.pending_unit
    print(f"  interrupted unit pending          : "
          f"{'yes, unit ' + str(pending.unit_id) if pending else 'no'}")

    fresh = Reorganizer(db, db.tree(), ReorgConfig())
    report = fresh.forward_recover(recovery)
    if report.forward_recovered_unit:
        print(
            f"  forward recovery FINISHED unit {report.forward_recovered_unit.unit_id}"
            f" (largest key {report.forward_recovered_unit.largest_key})"
        )
    fresh.run()  # complete the remaining passes from LK onwards
    tree = db.tree()
    tree.validate()
    assert [r.key for r in tree.items()] == keys_expected
    print(f"  units completed after resume      : {count_completed_units(db.log)}")
    print("  tree verified intact — no reorganization work was lost.\n")

    # ---- the baseline policy: rollback ------------------------------------
    db2 = build_degraded_db()
    smith = Smith90Reorganizer(db2, db2.tree(), ReorgConfig())
    # Crash a few appends into an operation, i.e. mid-flight (records moved
    # but the operation not yet committed).
    print("A crash mid-operation under the [Smi90] rollback policy ...")
    try:
        with LogCrashInjector(db2.log, after_records=3):
            smith.run_compaction()
    except CrashPoint:
        pass
    recovery2 = crash_recover(db2)
    if recovery2.pending_unit is not None:
        rolled_back = Smith90Reorganizer(
            db2, db2.tree(), ReorgConfig()
        ).recover_interrupted(recovery2.pending_unit)
        print(
            "  interrupted operation was "
            + ("ROLLED BACK — its work must be redone" if rolled_back
               else "past its commit point; completed")
        )
    db2.tree().validate()
    print("\nForward recovery saves exactly the in-flight unit that rollback")
    print("throws away — and needs no extra logging to do it (section 5.1).")


if __name__ == "__main__":
    main()
