#!/usr/bin/env python3
"""Parallel compaction — the paper's future work (section 9), built.

K reorganizer processes compact disjoint base-page partitions concurrently
on the deterministic scheduler.  Because units never span base pages
(section 3), workers never contend; the reorg progress table tracks one
(begin LSN, recent LSN) row per in-flight unit, so a crash with several
units mid-flight forward-recovers them all.

Run:  python examples/parallel_reorg.py
"""

import random

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.parallel import build_parallel_pass1
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


def degraded_db():
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=16,
            leaf_extent_pages=2048,
            internal_extent_pages=512,
            buffer_pool_pages=512,
        )
    )
    tree = db.bulk_load_tree([Record(k, "v") for k in range(6000)])
    rng = random.Random(1)
    for key in rng.sample(range(6000), 4200):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    return db


def run_workers(db, n_workers, crash_after=None):
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocols = build_parallel_pass1(
        db, "primary", ReorgConfig(), n_workers,
        unit_pause=0.01, op_duration=0.2,
    )
    for i, protocol in enumerate(protocols):
        sched.spawn(protocol.pass1(), name=f"worker-{i}", is_reorganizer=True)
    if crash_after is None:
        sched.run()
        return sched.now
    try:
        with LogCrashInjector(db.log, after_records=crash_after):
            sched.run()
        return None
    except CrashPoint:
        return "crashed"


def main() -> None:
    print("Speedup sweep (per-unit record-movement time = 0.2):")
    print(f"  {'workers':>8} {'pass-1 time':>12} {'speedup':>8} {'fill after':>11}")
    base = None
    for workers in (1, 2, 4, 8):
        db = degraded_db()
        elapsed = run_workers(db, workers)
        fill = collect_stats(db.tree()).leaf_fill
        db.tree().validate()
        base = base or elapsed
        print(f"  {workers:>8} {elapsed:>12.1f} {base / elapsed:>7.1f}x {fill:>11.2f}")

    print("\nCrash with several units in flight, then forward recovery:")
    # Scan crash offsets until one lands while >= 2 units are mid-flight
    # (whether an offset falls inside a unit depends on how the workers'
    # log appends interleave).
    for crash_after in range(20, 200, 7):
        db = degraded_db()
        outcome = run_workers(db, 4, crash_after=crash_after)
        assert outcome == "crashed"
        recovery = crash_recover(db)
        if len(recovery.pending_units) >= 2:
            break
    print(f"  crash after {crash_after} log appends")
    print(f"  pending units after recovery : "
          f"{[u.unit_id for u in recovery.pending_units]}")
    Reorganizer(db, db.tree(), ReorgConfig()).forward_recover(recovery)
    db.tree().validate()
    print("  every unit finished forward; tree verified intact.")


if __name__ == "__main__":
    main()
