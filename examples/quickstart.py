#!/usr/bin/env python3
"""Quickstart: degrade a B+-tree, reorganize it on-line, measure the gain.

Walks the paper's whole story in one script:

1. build a packed primary B+-tree (leaves hold the records);
2. delete most records — the free-at-empty policy leaves the tree sparse,
   exactly the degradation the paper's introduction describes;
3. run the three-pass on-line reorganization;
4. compare fill factor, tree height, disk order and range-scan cost.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    Record,
    ReorgConfig,
    Reorganizer,
    TreeConfig,
    collect_stats,
    measure_range_scan,
)


def show(label, stats, scan):
    print(f"{label}")
    print(f"  records          : {stats.record_count}")
    print(f"  leaf pages       : {stats.leaf_count}")
    print(f"  internal pages   : {stats.internal_count}")
    print(f"  tree height      : {stats.height}")
    print(f"  leaf fill factor : {stats.leaf_fill:.2f}")
    print(f"  disk order       : {stats.disk_order_fraction:.2f}")
    print(
        f"  range scan       : {scan.pages_read} pages, "
        f"{scan.seeks} seeks, cost {scan.read_cost:.0f}"
    )
    print()


def main() -> None:
    db = Database(
        TreeConfig(
            leaf_capacity=32,
            internal_capacity=32,
            leaf_extent_pages=2048,
            internal_extent_pages=512,
        )
    )

    # Section 1 of the paper: "The degradation could be caused by both
    # insertions and deletions."  Random-order insertion scatters the
    # leaves across the disk through splits; mass deletion then leaves
    # them sparse (free-at-empty never consolidates).
    print("Growing a tree of 10,000 records by random insertion ...")
    import random

    rng = random.Random(42)
    tree = db.create_tree()
    keys = list(range(10_000))
    rng.shuffle(keys)
    for key in keys:
        tree.insert(Record(key, f"payload-{key}"))

    print("Deleting 70% of the records (free-at-empty leaves them sparse) ...\n")
    for key in rng.sample(range(10_000), 7_000):
        tree.delete(key)
    db.flush()

    before = collect_stats(tree)
    scan_before = measure_range_scan(tree, 0, 9_999)
    show("BEFORE reorganization", before, scan_before)

    print("Running the three-pass on-line reorganization ...\n")
    report = Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
    tree = db.tree()  # the switch moved the root; re-attach
    tree.validate()

    after = collect_stats(tree)
    scan_after = measure_range_scan(tree, 0, 9_999)
    show("AFTER reorganization", after, scan_after)

    print("Reorganization work:")
    print(f"  pass 1 units            : {report.pass1.units}")
    print(f"    in-place compactions  : {report.pass1.in_place_units}")
    print(f"    new-place switches    : {report.pass1.new_place_units}")
    print(f"  pass 2 swaps / moves    : {report.pass2.swaps} / {report.pass2.moves}")
    print(f"  pass 3 base pages read  : {report.pass3.base_pages_read}")
    print(f"  old internals reclaimed : {report.switch.old_internal_freed}")
    print(f"  log bytes written       : {db.log.stats.bytes_appended:,}")
    speedup = scan_before.read_cost / max(scan_after.read_cost, 1.0)
    print(f"\nFull-tree scan cost improved {speedup:.1f}x.")


if __name__ == "__main__":
    main()
