#!/usr/bin/env python3
"""Swapping on demand: run pass 2 only when range scans get too slow.

Paper section 6: "We want swapping to be optional ... One scenario we
envision is choosing to do swapping only when range query performance
falls below some acceptable level."

This script plays a DBA's policy loop: churn degrades the tree; after each
burst a monitoring probe measures range-scan cost; compaction (pass 1)
runs whenever the fill factor sags, but the swap pass is triggered only
when the scan's seek ratio crosses a threshold.

Run:  python examples/range_scan_tuneup.py
"""

import random

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.reorganizer import Reorganizer
from repro.btree.stats import collect_stats, measure_range_scan
from repro.storage.page import Record

SCAN_COST_LIMIT = 0.45  # acceptable cost per record returned
FILL_FLOOR = 0.65


def churn(tree, rng, rounds=4000, key_space=30_000):
    """Randomly insert and delete, splitting and sparsifying leaves."""
    live = {r.key for r in tree.items()}
    for _ in range(rounds):
        if live and rng.random() < 0.6:
            key = rng.choice(tuple(live))
            tree.delete(key)
            live.discard(key)
        else:
            key = rng.randrange(key_space)
            if key not in live:
                tree.insert(Record(key, "churn"))
                live.add(key)


def probe(tree):
    stats = collect_stats(tree)
    lo = min(r.key for r in tree.items())
    hi = max(r.key for r in tree.items())
    scan = measure_range_scan(tree, lo, hi)
    per_record = scan.read_cost / max(scan.records_returned, 1)
    return stats, per_record


def main() -> None:
    rng = random.Random(99)
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=16,
            leaf_extent_pages=4096,
            internal_extent_pages=512,
        )
    )
    tree = db.bulk_load_tree([Record(k, "init") for k in range(8000)])

    print(f"{'round':>5} {'fill':>6} {'cost/rec':>9} {'action':<28}")
    for burst in range(1, 7):
        churn(tree, rng)
        tree = db.tree()
        stats, per_record = probe(tree)
        action = "-"
        reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
        if stats.leaf_fill < FILL_FLOOR:
            pass1 = reorg.run_pass1()
            action = f"pass 1 ({pass1.units} units)"
            if per_record > SCAN_COST_LIMIT:
                pass2 = reorg.run_pass2()
                action += f" + pass 2 ({pass2.swaps} swaps, {pass2.moves} moves)"
        elif per_record > SCAN_COST_LIMIT:
            pass2 = reorg.run_pass2()
            action = f"pass 2 only ({pass2.swaps} swaps, {pass2.moves} moves)"
        tree = db.tree()
        tree.validate()
        after_stats, after_cost = probe(tree)
        print(
            f"{burst:>5} {stats.leaf_fill:>6.2f} {per_record:>9.2f} {action:<28}"
            + (
                f"-> fill {after_stats.leaf_fill:.2f}, cost {after_cost:.2f}"
                if action != "-"
                else ""
            )
        )

    print("\nFinal shrink of the upper levels (pass 3 + switch) ...")
    reorg = Reorganizer(db, db.tree(), ReorgConfig())
    pass3, switch = reorg.run_pass3()
    tree = db.tree()
    tree.validate()
    print(
        f"  height {collect_stats(tree).height}, "
        f"{switch.old_internal_freed} old internal pages reclaimed, "
        f"{pass3.new_internal_pages} new ones built."
    )


if __name__ == "__main__":
    main()
