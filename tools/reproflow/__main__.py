"""``python -m reproflow`` entry point.

Exit status 0 means no findings; 1 means findings; 2 means usage error.
"""

from reproflow.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
