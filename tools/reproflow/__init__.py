"""reproflow — interprocedural pin/lock typestate analysis CLI.

The analysis engine lives in :mod:`repro.analysis.flowgraph` (it is part
of the package so it can share the Table-1 mode tables); this package is
the command-line front end, glued to reprolint's shared file cache and
suppression grammar.  Run as::

    PYTHONPATH=src:tools python -m reproflow [PATHS...]
"""

from reproflow.cli import main

__all__ = ["main"]
