"""CLI glue: file walking, suppressions, reporting for reproflow.

Reuses reprolint's :class:`~reprolint.engine.FileCache` (each file is read
and parsed exactly once even when lint and flow run together) and its
suppression grammar under the ``reproflow`` tool name:

* ``# reproflow: disable=pin-balance -- reason``      one line
* ``# reproflow: disable-file=lock-pairing -- reason``  whole file

Every directive must carry a ``-- reason``; missing reasons are findings
themselves (``suppression-reason``), as are directives that no longer
absorb anything (``stale-suppression``).  A lock-order cycle is suppressed
by a directive on *any* of its edge request sites.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _ensure_import_paths() -> None:
    """Allow ``PYTHONPATH=tools python -m reproflow`` from a checkout by
    adding the sibling ``src`` tree when :mod:`repro` is not importable."""
    here = Path(__file__).resolve()
    for candidate in (here.parents[2] / "src",):
        if candidate.is_dir() and str(candidate) not in sys.path:
            try:
                import repro  # noqa: F401
                return
            except ImportError:
                sys.path.insert(0, str(candidate))


_ensure_import_paths()

from reprolint.engine import FileCache, Suppressions, parse_suppressions

from repro.analysis.flowgraph import (
    ANALYSES,
    FlowFinding,
    FlowReport,
    analyze_files,
)

_ANALYSIS_DESCRIPTIONS = {
    "pin-balance": "every fetch(pin=True)/pin() reaches unpin() on all "
    "paths, including exception paths, across the call graph",
    "lock-pairing": "Table-1 lock traffic balances per owner+mode by the "
    "time a call-graph root returns",
    "lock-order": "held-while-acquiring edges form no blocking cycle "
    "(static deadlock candidates)",
}


def run_flow(
    paths: list[str],
    *,
    cache: FileCache,
    analyses: list[str] | None = None,
) -> tuple[list[FlowFinding], FlowReport]:
    """Analyze ``paths`` through ``cache``; returns the unsuppressed
    findings plus the raw report (whose stats include suppressed counts)."""
    parsed_files = cache.walk(paths)
    files = []
    sups: dict[str, Suppressions] = {}
    syntax: list[FlowFinding] = []
    for parsed in parsed_files:
        sups[parsed.rel] = parse_suppressions(parsed.source, tool="reproflow")
        if parsed.error is not None:
            syntax.append(FlowFinding(
                analysis="syntax-error",
                path=parsed.rel,
                line=parsed.error.lineno or 1,
                col=parsed.error.offset or 0,
                message=f"file does not parse: {parsed.error.msg}",
            ))
            continue
        assert parsed.tree is not None
        files.append((parsed.rel, parsed.tree))

    report = analyze_files(files, analyses=analyses)
    kept: list[FlowFinding] = list(syntax)
    suppressed = 0
    for finding in report.findings:
        sites = finding.sites or ((finding.path, finding.line),)
        hit = False
        for path, line in sites:
            sup = sups.get(path)
            # check every site (no short-circuit) so each matching
            # directive is marked used for the staleness pass.
            if sup is not None and sup.is_suppressed(finding.analysis, line):
                hit = True
        if hit:
            suppressed += 1
        else:
            kept.append(finding)

    for rel in sorted(sups):
        sup = sups[rel]
        for line, text in sup.missing_reason:
            kept.append(FlowFinding(
                analysis="suppression-reason",
                path=rel,
                line=line,
                col=sup.directive_cols.get(line, 0),
                message=(
                    "reproflow suppression without a reason: "
                    f"{text!r} — append '-- <why this is safe>'"
                ),
            ))
        if analyses is None:
            # staleness is only decidable when every analysis ran.
            for line, col, message in sup.iter_stale():
                kept.append(FlowFinding(
                    analysis="stale-suppression",
                    path=rel,
                    line=line,
                    col=col,
                    message=message.replace("rule", "analysis"),
                ))

    kept.sort(key=FlowFinding.sort_key)
    report.stats["suppressed"] = suppressed
    report.stats["reported"] = len(kept)
    return kept, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reproflow",
        description=(
            "interprocedural pin/lock typestate analysis and static "
            "lock-order deadlock detection"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings and stats as a JSON object",
    )
    parser.add_argument(
        "--analyses",
        default=None,
        help="comma-separated subset of analyses to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root anchoring relative paths (default: cwd)",
    )
    parser.add_argument(
        "--list-analyses", action="store_true",
        help="print the analysis catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_analyses:
        for name in ANALYSES:
            print(f"{name:16s} {_ANALYSIS_DESCRIPTIONS[name]}")
        return 0

    names = None
    if args.analyses:
        names = [n.strip() for n in args.analyses.split(",") if n.strip()]
    try:
        cache = FileCache(args.root)
        findings, report = run_flow(args.paths, cache=cache, analyses=names)
    except (ValueError, OSError) as error:
        print(f"reproflow: {error}", file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "findings": [f.to_dict() for f in findings],
            "stats": report.stats,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding)
            for line in finding.witness:
                print(f"    {line}")
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0
