"""Command-line front end: race-check scenarios across explored schedules.

``python -m reprorace SCENARIO`` reuses the reprocheck scenario registry
and exploration machinery, but every schedule executes under the hybrid
lockset + happens-before detector (:mod:`repro.analysis.racedetect`).  A
race on any schedule is a ``data-race`` violation carrying the two access
sites, the vector-clock evidence, and the ``t1:i.j.k`` replay trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.explorer import TraceError
from repro.analysis.racedetect import RaceExplorer

from reprocheck.scenarios import SCENARIOS

USAGE_EXIT = 2
VIOLATION_EXIT = 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprorace",
        description="Dynamic data-race detector over reprocheck schedule "
        "exploration (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario names to race-check (see --list)",
    )
    parser.add_argument("--all", action="store_true", help="run every registered scenario")
    parser.add_argument("--list", action="store_true", help="list scenarios, then exit")
    parser.add_argument(
        "--max-schedules", type=int, default=200, metavar="N",
        help="schedule budget per scenario (default %(default)s; every "
        "schedule is race-checked, so budgets are cheaper than reprocheck's)",
    )
    parser.add_argument(
        "--seed-trace", metavar="TRACE",
        help="start exploration from this trace (single scenario only); "
        "with --max-schedules 1 this race-checks one deterministic replay",
    )
    parser.add_argument("--json", action="store_true", help="print the JSON report instead of human output")
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument("--fail-fast", action="store_true", help="stop a scenario at its first violation")
    return parser


def _print_list() -> None:
    print("scenarios (shared with reprocheck):")
    for scenario in SCENARIOS.values():
        print(f"  {scenario.name:26s} {scenario.description}")
    print(
        "races reported: write-write, read-write, unvalidated-read "
        "(version-validated optimistic reads are benign by design)"
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        _print_list()
        return 0
    if args.all:
        names = list(SCENARIOS)
    else:
        names = list(args.scenarios)
    if not names:
        print("reprorace: no scenarios given (use --all or --list)", file=sys.stderr)
        return USAGE_EXIT
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"reprorace: unknown scenario(s) {unknown}; known: {list(SCENARIOS)}",
            file=sys.stderr,
        )
        return USAGE_EXIT
    if args.seed_trace and len(names) != 1:
        print("reprorace: --seed-trace needs exactly one scenario", file=sys.stderr)
        return USAGE_EXIT

    explorer = RaceExplorer()
    report: dict = {
        "max_schedules": args.max_schedules,
        "scenarios": {},
        "ok": True,
    }
    for name in names:
        scenario = SCENARIOS[name]
        try:
            result = explorer.explore(
                scenario,
                max_schedules=args.max_schedules,
                seed_trace=args.seed_trace,
                stop_on_first_violation=args.fail_fast,
            )
        except TraceError as err:
            print(f"reprorace: {name}: bad trace: {err}", file=sys.stderr)
            return USAGE_EXIT
        summary = result.to_dict()
        races = [v for v in result.violations if v.invariant == "data-race"]
        summary["data_races"] = len(races)
        report["scenarios"][name] = summary
        report["ok"] = report["ok"] and result.ok
        if not args.json:
            status = "OK" if result.ok else f"{len(result.violations)} VIOLATION(S)"
            print(
                f"{name}: {result.distinct_schedules} distinct schedules "
                f"race-checked ({result.schedules_run} run"
                f"{', exhausted' if result.frontier_exhausted else ''}) — {status}"
            )
            for violation in result.violations:
                print(f"  [{violation.invariant}] {violation.message}")
                print(
                    f"    replay: python -m reprorace {name} "
                    f"--seed-trace '{violation.trace}' --max-schedules 1"
                )
    if args.json:
        print(json.dumps(report, indent=2))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0 if report["ok"] else VIOLATION_EXIT
