"""reprorace: race-check reprocheck scenarios on every explored schedule.

The detector itself lives in the library (:mod:`repro.analysis.racedetect`)
so ``REPRO_RACE=1`` test runs and ``race_detector=True`` databases can use
it without the tools path; this package is the command-line front end.
"""

from reprorace.cli import main

__all__ = ["main"]
