import sys

from reprorace.cli import main

sys.exit(main())
