"""Command-line front end: run scenarios, report violations, emit JSON."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.explorer import Explorer, TraceError

from reprocheck.scenarios import SCENARIOS

USAGE_EXIT = 2
VIOLATION_EXIT = 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprocheck",
        description="Bounded schedule-exploration model checker for the "
        "reorg protocols (see docs/model_checking.md).",
    )
    parser.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario names to explore (see --list)",
    )
    parser.add_argument("--all", action="store_true", help="run every registered scenario")
    parser.add_argument("--list", action="store_true", help="list scenarios and invariants, then exit")
    parser.add_argument(
        "--max-schedules", type=int, default=1000, metavar="N",
        help="schedule budget per scenario (default %(default)s)",
    )
    parser.add_argument(
        "--seed-trace", metavar="TRACE",
        help="start exploration from this trace (single scenario only); "
        "with --max-schedules 1 this is a pure deterministic replay",
    )
    parser.add_argument("--json", action="store_true", help="print the JSON report instead of human output")
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument("--no-dpor", action="store_true", help="disable the independence filter")
    parser.add_argument("--no-hash-pruning", action="store_true", help="disable state-hash pruning")
    parser.add_argument("--fail-fast", action="store_true", help="stop a scenario at its first violation")
    return parser


def _print_list() -> None:
    from repro.analysis import invariants

    print("scenarios:")
    for scenario in SCENARIOS.values():
        print(f"  {scenario.name:26s} {scenario.description}")
    print("invariants:")
    for invariant in invariants.REGISTRY.values():
        print(f"  {invariant.name:26s} [{invariant.scope}] {invariant.description}")


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        _print_list()
        return 0
    if args.all:
        names = list(SCENARIOS)
    else:
        names = list(args.scenarios)
    if not names:
        print("reprocheck: no scenarios given (use --all or --list)", file=sys.stderr)
        return USAGE_EXIT
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"reprocheck: unknown scenario(s) {unknown}; known: {list(SCENARIOS)}",
            file=sys.stderr,
        )
        return USAGE_EXIT
    if args.seed_trace and len(names) != 1:
        print("reprocheck: --seed-trace needs exactly one scenario", file=sys.stderr)
        return USAGE_EXIT

    explorer = Explorer(dpor=not args.no_dpor, hash_pruning=not args.no_hash_pruning)
    report: dict = {
        "max_schedules": args.max_schedules,
        "scenarios": {},
        "ok": True,
    }
    for name in names:
        scenario = SCENARIOS[name]
        try:
            result = explorer.explore(
                scenario,
                max_schedules=args.max_schedules,
                seed_trace=args.seed_trace,
                stop_on_first_violation=args.fail_fast,
            )
        except TraceError as err:
            print(f"reprocheck: {name}: bad trace: {err}", file=sys.stderr)
            return USAGE_EXIT
        summary = result.to_dict()
        report["scenarios"][name] = summary
        report["ok"] = report["ok"] and result.ok
        if not args.json:
            status = "OK" if result.ok else f"{len(result.violations)} VIOLATION(S)"
            print(
                f"{name}: {result.distinct_schedules} distinct schedules "
                f"({result.schedules_run} run, depth<={result.max_depth}, "
                f"pruned {result.pruned_by_hash} hash / "
                f"{result.pruned_by_independence} indep"
                f"{', exhausted' if result.frontier_exhausted else ''}) — {status}"
            )
            for violation in result.violations:
                print(f"  [{violation.invariant}] {violation.message}")
                print(
                    f"    replay: python -m reprocheck {name} "
                    f"--seed-trace '{violation.trace}' --max-schedules 1"
                )
    if args.json:
        print(json.dumps(report, indent=2))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0 if report["ok"] else VIOLATION_EXIT
