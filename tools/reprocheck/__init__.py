"""reprocheck — schedule-exploration model checker for the reorg protocols.

Thin CLI over :mod:`repro.analysis.explorer` plus a registry of small,
deterministically re-buildable concurrency scenarios.  Run as::

    PYTHONPATH=src:tools python -m reprocheck --all --max-schedules 2000

When ``repro`` is not already importable, the repository's ``src``
directory (two levels up from this package) is added to ``sys.path``, so
``PYTHONPATH=tools python -m reprocheck`` from the repo root also works.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    _src = Path(__file__).resolve().parents[2] / "src"
    if _src.is_dir():
        sys.path.insert(0, str(_src))
