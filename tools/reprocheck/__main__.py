"""``python -m reprocheck`` entry point."""

import sys

from reprocheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
