"""The scenario registry: small, deterministic concurrency worlds.

Every builder returns a fresh :class:`~repro.analysis.explorer.World` —
same spawn plan, same tree, same keys on every call — which is what lets
the explorer re-execute a scenario hundreds of times and replay any trace.
Keep scenarios *tiny*: exploration cost is (schedules x world size).
"""

from __future__ import annotations

from repro.analysis.explorer import Scenario, World
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import (
    CrashPoint,
    DeadlockError,
    SwitchTimeoutError,
    TransactionAborted,
)
from repro.btree.protocols import (
    reader_range_scan,
    reader_search,
    updater_delete,
    updater_insert,
)
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.reorganizer import Reorganizer
from repro.sim.workload import WorkloadConfig, build_sparse_tree, plan_workload, transaction_generator
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler
from repro.wal.records import TreeSwitchRecord

_EXPECTED = (TransactionAborted, DeadlockError, SwitchTimeoutError)


def _tiny_config() -> TreeConfig:
    return TreeConfig(
        leaf_capacity=4,
        internal_capacity=4,
        leaf_extent_pages=64,
        internal_extent_pages=32,
        buffer_pool_pages=16,
    )


def _tiny_db(n_records: int, fill_after: float, seed: int) -> tuple[Database, frozenset[int]]:
    db = Database(_tiny_config())
    build_sparse_tree(db, n_records=n_records, fill_after=fill_after, seed=seed)
    db.flush()
    db.checkpoint()
    initial = frozenset(record.key for record in db.tree().items())
    return db, initial


def _scheduler(db: Database) -> Scheduler:
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=1.0, hit_time=0.05)


# -- reader-vs-pass1 ----------------------------------------------------------------


def _build_reader_vs_pass1() -> World:
    db, initial = _tiny_db(n_records=24, fill_after=0.45, seed=5)
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(do_swap_pass=False),
        op_duration=0.4, unit_pause=0.1,
    )
    scheduler.spawn(protocol.pass1(), name="reorganizer", is_reorganizer=True)
    keys = sorted(initial)
    targets = [keys[1], keys[len(keys) // 2], keys[-2]]
    reads: dict[str, int] = {}
    for index, key in enumerate(targets):
        name = f"reader-{index}"
        scheduler.spawn(
            reader_search(db, "primary", key, think=0.05),
            name=name, at=0.3 + 0.4 * index,
        )
        reads[name] = key
    return World(
        db=db, scheduler=scheduler, initial_keys=initial, reads=reads,
        expected_failures=_EXPECTED,
    )


# -- updater-vs-pass3-switch --------------------------------------------------------


def _pass3_protocol(db: Database, scheduler: Scheduler) -> ReorgProtocol:
    config = ReorgConfig(
        do_swap_pass=False,
        switch_wait_limit=3.0,
        abort_old_transactions_on_timeout=True,
        stable_point_interval=3,
    )
    protocol = ReorgProtocol(db, "primary", config, op_duration=0.3)
    protocol.abort_hook = lambda victims: [
        scheduler.abort_transaction(victim, "old-tree drain timeout")
        for victim in victims
    ]
    return protocol


def _build_updater_vs_pass3_switch() -> World:
    db, initial = _tiny_db(n_records=40, fill_after=0.5, seed=7)
    scheduler = _scheduler(db)
    protocol = _pass3_protocol(db, scheduler)
    scheduler.spawn(protocol.pass3(), name="reorganizer", is_reorganizer=True)
    keys = sorted(initial)
    absent = next(k for k in range(40) if k not in initial)
    present = keys[len(keys) // 3]
    read_key = keys[-3]
    scheduler.spawn(
        updater_insert(db, "primary", Record(absent, "w"), think=0.05),
        name="insert-0", at=0.4,
    )
    scheduler.spawn(
        updater_delete(db, "primary", present, think=0.05),
        name="delete-0", at=0.9,
    )
    scheduler.spawn(
        reader_search(db, "primary", read_key, think=0.05),
        name="reader-0", at=1.3,
    )
    return World(
        db=db, scheduler=scheduler, initial_keys=initial,
        reads={"reader-0": read_key},
        writes={"insert-0": ("insert", absent), "delete-0": ("delete", present)},
        expected_failures=_EXPECTED,
    )


# -- crash-during-switch ------------------------------------------------------------


def _build_crash_during_switch() -> World:
    db, initial = _tiny_db(n_records=40, fill_after=0.5, seed=9)
    scheduler = _scheduler(db)
    config = ReorgConfig(do_swap_pass=False, stable_point_interval=3)
    protocol = ReorgProtocol(db, "primary", config, op_duration=0.3)
    scheduler.spawn(protocol.pass3(), name="reorganizer", is_reorganizer=True)
    keys = sorted(initial)
    reads: dict[str, int] = {}
    for index, key in enumerate((keys[2], keys[-4])):
        name = f"reader-{index}"
        scheduler.spawn(
            reader_search(db, "primary", key, think=0.05),
            name=name, at=0.3 + 0.5 * index,
        )
        reads[name] = key

    # Crash the instant the switch record is stable: the record is appended
    # and flushed, the root flip has NOT happened yet — recovery must finish
    # the switch forward (section 7.4 / 5.1).
    log = db.log
    original_append = log.append

    def crashing_append(record):
        lsn = original_append(record)
        if isinstance(record, TreeSwitchRecord):
            log.flush()
            raise CrashPoint("crash immediately after the switch record is stable")
        return lsn

    log.append = crashing_append

    def drive(world: World) -> None:
        try:
            world.scheduler.run()
        except CrashPoint:
            world.db.crash()
            report = world.db.recover()
            reorganizer = Reorganizer(world.db, world.db.tree("primary"), config)
            reorganizer.forward_recover(report)

    return World(
        db=db, scheduler=scheduler, initial_keys=initial, reads=reads,
        expected_failures=_EXPECTED, drive=drive,
    )


# -- canned workloads ---------------------------------------------------------------


def _build_mixed_tiny() -> World:
    db, initial = _tiny_db(n_records=40, fill_after=0.5, seed=11)
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(do_swap_pass=False),
        op_duration=0.3, unit_pause=0.05,
    )
    scheduler.spawn(
        full_reorganization(protocol), name="reorganizer", is_reorganizer=True
    )
    workload = WorkloadConfig(
        n_transactions=6,
        read_fraction=0.5, scan_fraction=0.0,
        insert_fraction=0.25, delete_fraction=0.25,
        key_space=40, mean_interarrival=0.25, think=0.05, seed=13,
    )
    reads: dict[str, int] = {}
    writes: dict[str, tuple[str, int]] = {}
    for index, plan in enumerate(plan_workload(workload)):
        name = f"{plan.kind}-{index}"
        scheduler.spawn(
            transaction_generator(db, "primary", plan, workload.think),
            name=name, at=plan.arrival,
        )
        if plan.kind == "read":
            reads[name] = plan.key
        elif plan.kind in ("insert", "delete"):
            writes[name] = (plan.kind, plan.key)
    return World(
        db=db, scheduler=scheduler, initial_keys=initial,
        reads=reads, writes=writes, expected_failures=_EXPECTED,
    )


def _build_scan_vs_pass1() -> World:
    db, initial = _tiny_db(n_records=24, fill_after=0.5, seed=15)
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(do_swap_pass=False),
        op_duration=0.3, unit_pause=0.05,
    )
    scheduler.spawn(protocol.pass1(), name="reorganizer", is_reorganizer=True)
    keys = sorted(initial)
    scheduler.spawn(
        reader_range_scan(db, "primary", keys[0], keys[len(keys) // 2], think_per_page=0.02),
        name="scan-0", at=0.3,
    )
    scheduler.spawn(
        reader_range_scan(db, "primary", keys[len(keys) // 3], keys[-1], think_per_page=0.02),
        name="scan-1", at=0.7,
    )
    absent = next(k for k in range(24) if k not in initial)
    scheduler.spawn(
        updater_insert(db, "primary", Record(absent, "w"), think=0.05),
        name="insert-0", at=1.0,
    )
    return World(
        db=db, scheduler=scheduler, initial_keys=initial,
        writes={"insert-0": ("insert", absent)},
        expected_failures=_EXPECTED,
    )


# -- shard-reorg-scan ---------------------------------------------------------------


def _build_shard_reorg_scan() -> World:
    """Two shard reorganizers run the full per-shard three-pass algorithm
    concurrently while a cross-shard range scan and per-shard point
    readers traverse the forest.  The scenario restricts itself to the
    read-linearizability and switch-safety invariants: the whole-tree
    structure / side-file invariants assume one tree covering every
    initial key, which a forest deliberately is not."""
    import random

    from repro.config import ShardConfig
    from repro.shard import ParallelReorganizer, ShardedDatabase

    sdb = ShardedDatabase(_tiny_config(), ShardConfig(n_shards=2))
    keys = list(range(32))
    sdb.bulk_load([Record(k, "v") for k in keys])
    for key in random.Random(21).sample(keys, 16):
        sdb.delete(key)
    sdb.flush()
    sdb.checkpoint()
    initial = frozenset(r.key for r in sdb.range_scan(0, 31))
    scheduler = Scheduler(
        sdb.locks, store=sdb.store, log=sdb.log, io_time=1.0, hit_time=0.05
    )
    reorg = ParallelReorganizer(
        sdb,
        ReorgConfig(do_swap_pass=False, stable_point_interval=3),
        op_duration=0.3,
        unit_pause=0.05,
    )
    reorg.spawn_all(scheduler)

    ordered = sorted(initial)

    def cross_shard_scan(low, high):
        # Shard order == key order under range partitioning, so the
        # concatenation is the merged scan.
        for handle in sdb.handles:
            yield from reader_range_scan(
                sdb, handle.tree_name, low, high, think_per_page=0.02
            )

    scheduler.spawn(
        cross_shard_scan(ordered[0], ordered[-1]), name="scan-0", at=0.3
    )
    reads: dict[str, int] = {}
    for index, key in enumerate((ordered[1], ordered[-2])):
        handle = sdb.handles[sdb.router.shard_for(key)]
        name = f"reader-{index}"
        scheduler.spawn(
            reader_search(sdb, handle.tree_name, key, think=0.05),
            name=name, at=0.5 + 0.4 * index,
        )
        reads[name] = key
    return World(
        db=sdb,
        scheduler=scheduler,
        tree_name=sdb.handles[0].tree_name,
        initial_keys=initial,
        reads=reads,
        expected_failures=_EXPECTED,
    )


# -- optimistic-reader-vs-reorg -----------------------------------------------------


def _build_optimistic_reader_vs_reorg() -> World:
    """Optimistic (latch-free) readers race a full three-pass
    reorganization: version-validated point descents and a leaf-chain scan
    run against pass-1 group moves and the pass-3 switch.  Readers that
    observe an RX holder downgrade to the Table-1 locked protocol; the
    rest never touch the lock manager, so read-linearizability here checks
    that version-stamp validation alone keeps their results admissible,
    and switch-safety that the root bump re-anchors in-flight descents.
    Restricted to those two invariants: the structure / side-file
    invariants assume locked readers' quiescent states."""
    config = TreeConfig(
        leaf_capacity=4,
        internal_capacity=4,
        leaf_extent_pages=64,
        internal_extent_pages=32,
        buffer_pool_pages=16,
        optimistic_reads=True,
    )
    db = Database(config)
    build_sparse_tree(db, n_records=24, fill_after=0.45, seed=17)
    db.flush()
    db.checkpoint()
    initial = frozenset(record.key for record in db.tree().items())
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary",
        ReorgConfig(do_swap_pass=False, stable_point_interval=3),
        op_duration=0.3, unit_pause=0.05,
    )
    scheduler.spawn(
        full_reorganization(protocol), name="reorganizer", is_reorganizer=True
    )
    keys = sorted(initial)
    reads: dict[str, int] = {}
    for index, key in enumerate((keys[1], keys[len(keys) // 2], keys[-2])):
        name = f"reader-{index}"
        scheduler.spawn(
            reader_search(db, "primary", key, think=0.05),
            name=name, at=0.3 + 0.4 * index,
        )
        reads[name] = key
    scheduler.spawn(
        reader_range_scan(db, "primary", keys[0], keys[-1], think_per_page=0.02),
        name="scan-0", at=0.5,
    )
    return World(
        db=db, scheduler=scheduler, initial_keys=initial, reads=reads,
        expected_failures=_EXPECTED,
    )


# -- daemon-vs-readers --------------------------------------------------------------


def _build_daemon_vs_readers() -> World:
    """The fragmentation-aware auto-reorg daemon — not a manually spawned
    reorganizer — decides from the live fill-factor metrics to run the
    three-pass reorganization over a two-shard forest while latch-free
    optimistic readers and a cross-shard range scan traverse it.  Both
    pre-fragmented shards cross ``frag_high`` on the daemon's first poll,
    so the daemon reorganizes them back-to-back inside its own transaction
    with readers in flight.  Restricted to read-linearizability and
    switch-safety for the same reasons as ``shard-reorg-scan`` (a forest
    breaks the whole-tree invariants' assumptions) and
    ``optimistic-reader-vs-reorg`` (latch-free readers have no locked
    quiescent states)."""
    import random

    from repro.config import DaemonConfig, ShardConfig
    from repro.reorg.daemon import ReorgDaemon
    from repro.shard import ShardedDatabase

    config = TreeConfig(
        leaf_capacity=4,
        internal_capacity=4,
        leaf_extent_pages=64,
        internal_extent_pages=32,
        buffer_pool_pages=16,
        optimistic_reads=True,
    )
    sdb = ShardedDatabase(config, ShardConfig(n_shards=2))
    keys = list(range(32))
    sdb.bulk_load([Record(k, "v") for k in keys])
    for key in random.Random(23).sample(keys, 16):
        sdb.delete(key)
    sdb.flush()
    sdb.checkpoint()
    initial = frozenset(r.key for r in sdb.range_scan(0, 31))
    scheduler = Scheduler(
        sdb.locks, store=sdb.store, log=sdb.log, io_time=1.0, hit_time=0.05
    )
    daemon = ReorgDaemon.for_shards(
        sdb,
        DaemonConfig(
            poll_interval=0.5,
            frag_high=0.20,
            frag_low=0.05,
            cooldown=10.0,
            max_triggers=2,
        ),
        ReorgConfig(do_swap_pass=False, stable_point_interval=3),
        op_duration=0.3,
        unit_pause=0.05,
    )
    daemon.spawn(scheduler, horizon=2.0)

    ordered = sorted(initial)

    def cross_shard_scan(low, high):
        for handle in sdb.handles:
            yield from reader_range_scan(
                sdb, handle.tree_name, low, high, think_per_page=0.02
            )

    scheduler.spawn(
        cross_shard_scan(ordered[0], ordered[-1]), name="scan-0", at=0.3
    )
    reads: dict[str, int] = {}
    for index, key in enumerate((ordered[1], ordered[-2])):
        handle = sdb.handles[sdb.router.shard_for(key)]
        name = f"reader-{index}"
        scheduler.spawn(
            reader_search(sdb, handle.tree_name, key, think=0.05),
            name=name, at=0.6 + 0.4 * index,
        )
        reads[name] = key
    return World(
        db=sdb,
        scheduler=scheduler,
        tree_name=sdb.handles[0].tree_name,
        initial_keys=initial,
        reads=reads,
        expected_failures=_EXPECTED,
    )


def _build_deadlock_victim() -> World:
    """Minimal ABBA deadlock with the reorganizer on one side: every
    schedule that closes the cycle must pick the reorganizer as victim
    (exercises the ``on_victim`` hook on real deadlocks)."""
    from repro.locks.modes import LockMode
    from repro.txn.ops import Acquire, ReleaseAll, Think

    db = Database(_tiny_config())
    db.create_tree()
    db.flush()
    scheduler = _scheduler(db)
    page_a = ("page", 900)
    page_b = ("page", 901)

    def locker(first, second):
        yield Acquire(first, LockMode.X)
        yield Think(0.5)
        yield Acquire(second, LockMode.X)
        yield Think(0.1)
        yield ReleaseAll()

    scheduler.spawn(
        locker(page_a, page_b), name="reorganizer", is_reorganizer=True
    )
    scheduler.spawn(locker(page_b, page_a), name="user", at=0.1)
    return World(
        db=db, scheduler=scheduler, expected_failures=(DeadlockError,),
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="reader-vs-pass1",
            description="three point readers race pass-1 leaf compaction "
            "(RX back-off, instant RS, Table-1 on base and leaf pages)",
            build=_build_reader_vs_pass1,
        ),
        Scenario(
            name="updater-vs-pass3-switch",
            description="structural updaters and a reader race pass 3 and "
            "the switch (side-file capture + replay, drain/abort policy)",
            build=_build_updater_vs_pass3_switch,
        ),
        Scenario(
            name="crash-during-switch",
            description="crash right after the switch record is stable; "
            "recovery must finish the switch forward",
            build=_build_crash_during_switch,
        ),
        Scenario(
            name="mixed-tiny",
            description="canned workload: 6 planned read/insert/delete "
            "transactions against a full three-pass reorganization",
            build=_build_mixed_tiny,
        ),
        Scenario(
            name="scan-vs-pass1",
            description="canned workload: two overlapping range scans and "
            "an insert against pass-1 compaction",
            build=_build_scan_vs_pass1,
        ),
        Scenario(
            name="shard-reorg-scan",
            description="two shard reorganizers run full three-pass reorgs "
            "in parallel against a cross-shard range scan and point readers",
            build=_build_shard_reorg_scan,
            invariants=("read-linearizability", "switch-safety"),
        ),
        Scenario(
            name="optimistic-reader-vs-reorg",
            description="latch-free version-validated readers and a scan "
            "race a full three-pass reorganization (RX downgrade, restart "
            "on stamp mismatch, root bump at the switch)",
            build=_build_optimistic_reader_vs_reorg,
            invariants=("read-linearizability", "switch-safety"),
        ),
        Scenario(
            name="daemon-vs-readers",
            description="the auto-reorg daemon triggers per-shard reorgs "
            "from live fragmentation metrics while optimistic readers and "
            "a cross-shard scan race the passes and switches",
            build=_build_daemon_vs_readers,
            invariants=("read-linearizability", "switch-safety"),
        ),
        Scenario(
            name="deadlock-victim",
            description="ABBA deadlock between the reorganizer and a user "
            "transaction; the reorganizer must always be the victim",
            build=_build_deadlock_victim,
        ),
    )
}
