"""The rule catalogue — each rule encodes one invariant of the paper's
protocol stack that Python itself cannot enforce.

Rules report ``(line, col, message)`` tuples; the engine handles
suppressions and path scoping.  ``docs/static_analysis.md`` documents each
rule with examples; keep the two in sync when adding rules.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Iterator

from reprolint.engine import LintContext, Rule, register

#: Paths allowed to touch page internals / the raw disk: the storage layer
#: itself and the do/redo interpreter (which IS the WAL apply path).
_STORAGE_PATHS = ("src/repro/storage/",)
_WAL_APPLY = "src/repro/wal/apply.py"

#: Private per-page containers; mutating them directly skips the logged
#: mutator methods and therefore the WAL.
_PAGE_INTERNALS = {"_records", "_keys", "_children"}

#: Public page fields whose *assignment* outside the sanctioned layers is a
#: WAL bypass (they are all covered by log record types).
_PAGE_FIELDS = {"page_lsn", "next_leaf", "prev_leaf", "low_mark"}

_LOCK_MODE_NAMES = {"IS", "IX", "S", "X", "R", "RX", "RS"}


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _call_name(func: ast.expr) -> str | None:
    """The trailing identifier of a call target (``a.b.c(...)`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _mentions_mode(node: ast.expr, mode: str) -> bool:
    """Whether an expression is the bare name ``RS`` or ``LockMode.RS``."""
    if isinstance(node, ast.Name):
        return node.id == mode
    if isinstance(node, ast.Attribute):
        return node.attr == mode and isinstance(node.value, ast.Name) and (
            node.value.id == "LockMode"
        )
    return False


@register
class PageInternalsRule(Rule):
    """WAL-bypass detection: page state may only change through the logged
    mutator methods; poking ``_records``/``_keys``/``_children`` (or
    assigning ``page_lsn``/side pointers/low marks) outside the storage
    layer and ``wal/apply.py`` mutates pages the log never heard about."""

    name = "page-internals"
    description = (
        "no direct access to Page/LeafPage/InternalPage internals outside "
        "repro/storage and repro/wal/apply.py"
    )
    include = ("src/",)
    exclude = _STORAGE_PATHS + (_WAL_APPLY,)

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in _PAGE_INTERNALS and not _is_self(node.value):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"access to page-internal attribute {node.attr!r} "
                        f"outside the storage layer (WAL bypass)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _PAGE_FIELDS
                        and not _is_self(target.value)
                    ):
                        yield (
                            target.lineno,
                            target.col_offset,
                            f"assignment to page field {target.attr!r} outside "
                            f"the storage layer (WAL bypass; log it instead)",
                        )


#: Call names that acquire a lock and ones that give one back.
_ACQUIRES = {"request", "Acquire"}
_RELEASES = {
    "release",
    "release_all",
    "cancel_wait",
    "downgrade",
    "convert",
    "Release",
    "ReleaseAll",
    "Downgrade",
    "Convert",
}


@register
class LockReleasePairingRule(Rule):
    """Every lock acquisition must have a release/convert/downgrade on some
    path in the same function, or carry a ``# reprolint: held-across``
    escape explaining why the lock outlives the function."""

    name = "lock-release-pairing"
    description = (
        "LockManager.request(...) / Acquire(...) paired with a release or "
        "conversion in the same function (or '# reprolint: held-across')"
    )
    include = ("src/",)

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        held_across = ctx.suppressions.held_across
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            acquires: list[ast.Call] = []
            releases = False
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                called = _call_name(sub.func)
                if called in _ACQUIRES:
                    # Instant-duration requests are never actually held, so
                    # there is nothing to release.
                    if not _is_true(_keyword(sub, "instant")):
                        acquires.append(sub)
                elif called in _RELEASES:
                    releases = True
            if releases:
                continue
            for call in acquires:
                if call.lineno in held_across:
                    continue
                yield (
                    call.lineno,
                    call.col_offset,
                    "lock acquired but no release/convert/downgrade appears "
                    "in this function; add one or mark the line "
                    "'# reprolint: held-across -- <why>'",
                )


@register
class BufferBypassRule(Rule):
    """All stable writes must flow through the buffer pool, whose flush
    path enforces the write-ahead rule via its WALHook; writing (or
    reading/erasing) the simulated disk directly skips that check."""

    name = "buffer-bypass"
    description = (
        "no direct SimulatedDisk read/write/erase outside repro/storage "
        "(bypasses the buffer pool's WALHook)"
    )
    include = ("src/",)
    exclude = _STORAGE_PATHS

    _DISK_METHODS = {"write", "read", "erase", "write_page"}
    _DISK_NAMES = {"disk", "_disk"}

    def _is_disk_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._DISK_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._DISK_NAMES
        return False

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "write_page":
                yield (
                    node.lineno,
                    node.col_offset,
                    "write_page bypasses the buffer pool; use "
                    "buffer.fetch/mark_dirty/flush_page",
                )
            elif func.attr in self._DISK_METHODS and self._is_disk_expr(func.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"direct disk.{func.attr}(...) bypasses the buffer pool "
                    f"and its WAL hook; go through the StorageManager",
                )


@register
class NoRawDiskWriteRule(Rule):
    """The batched-I/O layer made the raw disk a sharper knife: ``write``
    moves the shared head and bills seek/sequential cost, ``read_batch``
    has an ascending-ids contract.  Tests and tools that poke the disk
    directly silently distort those numbers for everything measured after
    them, so raw access is fenced into the storage layer and its own test
    suite; everyone else goes through the StorageManager / BufferPool."""

    name = "no-raw-disk-write"
    description = (
        "no direct SimulatedDisk read/write/erase/read_batch outside the "
        "storage layer and its tests (distorts the shared-head cost model)"
    )
    include = ("src/", "tests/", "tools/")
    exclude = _STORAGE_PATHS + ("tests/storage/",)

    _DISK_METHODS = {"write", "read", "erase", "read_batch"}
    _DISK_NAMES = {"disk", "_disk"}

    def _is_disk_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._DISK_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._DISK_NAMES
        return False

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in self._DISK_METHODS and self._is_disk_expr(func.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"raw disk.{func.attr}(...) outside the storage layer; "
                    f"it moves the shared disk head and skews the I/O cost "
                    f"model — use the StorageManager/BufferPool",
                )


@register
class BareExceptRule(Rule):
    """A bare ``except:`` swallows CrashPoint / KeyboardInterrupt and hides
    protocol violations; always name the exceptions you mean."""

    name = "bare-except"
    description = "no bare 'except:' clauses anywhere"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare 'except:' — name the exception types "
                    "(a bare clause also swallows CrashPoint)",
                )


@lru_cache(maxsize=8)
def _perf_counter_slots(root: Path) -> frozenset[str]:
    """The registered counter names: PerfCounters.__slots__ in perf.py."""
    perf_py = root / "src" / "repro" / "perf.py"
    if not perf_py.is_file():
        return frozenset()
    tree = ast.parse(perf_py.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "PerfCounters":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                    and isinstance(stmt.value, (ast.Tuple, ast.List))
                ):
                    return frozenset(
                        el.value
                        for el in stmt.value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    )
    return frozenset()


@register
class PerfCounterRegistryRule(Rule):
    """Counter bumps must hit slots that exist: a typo'd counter name on a
    ``__slots__`` object raises AttributeError — but only on the first hit
    of that code path, which benchmarks may never take."""

    name = "perf-counters"
    description = (
        "repro.perf counter increments only on names registered in "
        "PerfCounters.__slots__"
    )

    _RECEIVERS = {"_COUNTERS", "counters"}

    def _is_counters_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._RECEIVERS
        if isinstance(node, ast.Attribute):
            return node.attr == "counters"
        return False

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        slots = _perf_counter_slots(ctx.root)
        if not slots:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.AugAssign, ast.Assign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and self._is_counters_expr(target.value)
                    and target.attr not in slots
                    and not target.attr.startswith("__")
                ):
                    yield (
                        target.lineno,
                        target.col_offset,
                        f"counter {target.attr!r} is not registered in "
                        f"PerfCounters.__slots__ (src/repro/perf.py)",
                    )


@register
class PublicAnnotationsRule(Rule):
    """The lock manager and the reorganizer are the protocol surface; their
    public signatures must be fully typed so call-site mistakes (a mode
    where a resource goes, a PageId where a key goes) surface in review."""

    name = "public-annotations"
    description = (
        "public functions in repro/reorg/ and repro/locks/ carry full "
        "parameter and return annotations"
    )
    include = ("src/repro/reorg/", "src/repro/locks/")

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        # Only top-level functions and methods: functions nested inside
        # another function are implementation details.
        yield from self._scan(ctx.tree.body)

    def _scan(self, body: list[ast.stmt]) -> Iterator[tuple[int, int, str]]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._scan(node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                missing = [
                    arg.arg
                    for arg in (
                        node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                    )
                    if arg.annotation is None and arg.arg not in ("self", "cls")
                ]
                if node.returns is None:
                    missing.append("return")
                if missing:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"public function {node.name!r} is missing type "
                        f"annotations for: {', '.join(missing)}",
                    )


@register
class RSInstantRule(Rule):
    """RS is the paper's unconditional *instant-duration* mode ([Moh90]):
    it is never actually granted, so requesting it without instant=True is
    a protocol error the lock manager only catches at run time."""

    name = "rs-instant"
    description = "every RS lock request passes instant=True"
    include = ("src/",)

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) not in _ACQUIRES:
                continue
            if not any(_mentions_mode(arg, "RS") for arg in node.args):
                continue
            if not _is_true(_keyword(node, "instant")):
                yield (
                    node.lineno,
                    node.col_offset,
                    "RS requested without instant=True; RS is an "
                    "instant-duration mode and is never held",
                )


@register
class MarkDirtyLSNRule(Rule):
    """Dirtying a page without stamping the covering log record's LSN
    breaks the WAL-flush-skip fast path and the redo page-LSN test; only
    the storage layer itself may dirty pages anonymously."""

    name = "mark-dirty-lsn"
    description = (
        "mark_dirty(...) outside repro/storage must pass the covering log "
        "record's LSN"
    )
    include = ("src/",)
    exclude = _STORAGE_PATHS

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) != "mark_dirty":
                continue
            if len(node.args) < 2 and _keyword(node, "lsn") is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "mark_dirty without an LSN: pass the log record's LSN "
                    "so the page-LSN chain stays intact",
                )


@register
class LockModeLiteralRule(Rule):
    """Lock modes are enum members; string spellings silently miss Table-1
    dispatch (``'X' != LockMode.X``) and dodge the blank-cell check."""

    name = "lockmode-literal"
    description = (
        "no string literals where a LockMode belongs (comparisons against "
        "mode values, LockMode('X') round-trips)"
    )
    include = ("src/",)

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                has_mode_attr = any(
                    isinstance(s, ast.Attribute) and s.attr == "mode" for s in sides
                )
                literal = next(
                    (
                        s
                        for s in sides
                        if isinstance(s, ast.Constant)
                        and s.value in _LOCK_MODE_NAMES
                    ),
                    None,
                )
                if has_mode_attr and literal is not None:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"comparing a lock mode against the string "
                        f"{literal.value!r}; use LockMode.{literal.value}",
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "LockMode"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "constructing LockMode from a string literal; name "
                        "the member directly",
                    )


@register
class SuppressionReasonRule(Rule):
    """Suppressions document accepted risk; an unexplained one is just a
    silenced alarm.  Every directive must end with ``-- <reason>``."""

    name = "suppression-reason"
    description = "every reprolint suppression comment carries a '-- reason'"

    def check(self, ctx: LintContext) -> Iterable[tuple[int, int, str]]:
        for line, text in ctx.suppressions.missing_reason:
            yield (
                line,
                0,
                f"suppression without a reason: {text!r} — append "
                f"'-- <why this is safe>'",
            )


@register
class StaleSuppressionRule(Rule):
    """A suppression that no longer absorbs any finding is a silenced
    alarm for a fire that went out — it hides future regressions on that
    line.  The detection itself lives in the engine (it needs to observe
    every other rule's suppression hits, so it runs after the rule loop,
    and only on full-rule-set runs); this class is the catalogue entry
    and lets the finding be suppressed like any other."""

    name = "stale-suppression"
    description = (
        "suppression whose rule no longer fires on that line (checked on "
        "full-rule-set runs only)"
    )

    def check(self, ctx: LintContext) -> Iterable[tuple[int, int, str]]:
        return ()


@register
class ShardRouterOnlyRule(Rule):
    """Shard isolation is structural: a :class:`ShardHandle` can only reach
    its own tree because all tree access inside ``src/repro/shard/`` flows
    through the handle (``handle.tree()`` / ``BPlusTree.attach`` on the
    leased store).  Calling ``Database.tree()`` from shard internals would
    hand a shard the *unsharded* primary tree — a cross-shard backdoor the
    lease machinery cannot police."""

    name = "shard-router-only"
    description = (
        "no direct Database.tree() access inside src/repro/shard/; go "
        "through the ShardHandle (or the router on the facade)"
    )
    include = ("src/repro/shard/",)

    #: Receiver spellings that denote the underlying Database (as opposed
    #: to a ShardHandle, whose conventional names are handle/h/shard).
    _DB_NAMES = {"db", "database", "_db", "base_db", "parent_db", "Database"}

    def _is_database_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._DB_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._DB_NAMES
        return False

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "tree":
                continue
            if self._is_database_expr(func.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    "Database.tree() called from shard internals; shard "
                    "code must reach trees through its ShardHandle so the "
                    "extent-lease isolation holds",
                )


def _walk_in_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body: lambdas are entered (they execute inline
    in the generator's step), nested ``def``/``class`` are not (they are
    their own lint unit)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


@register
class OptimisticLockFreeRule(Rule):
    """The optimistic read path is lock-free *by contract*: a descent or
    scan function on it may not acquire locks (no ``Acquire``/``Convert``
    ops, no synchronous ``.request()``/``.convert()``), and when it must
    fall back to the Table-1 locked protocol — an RX holder was observed —
    it may only do so through the single ``_optimistic_downgrade`` helper,
    never by calling a ``_locked_*`` protocol directly.  Funnelling every
    fallback through one site is what keeps the downgrade accounting
    honest and the give-up / instant-RS semantics in exactly one place."""

    name = "optimistic-lock-free"
    description = (
        "functions on the optimistic read path acquire no locks and reach "
        "the locked protocol only via _optimistic_downgrade"
    )
    include = ("src/repro/btree/", "src/repro/shard/")

    _ACQUIRE_CALLS = {"Acquire", "Convert", "request", "convert"}

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "optimistic" not in func.name:
                continue
            if func.name == "_optimistic_downgrade":
                continue  # the one sanctioned bridge to the locked path
            for node in _walk_in_function(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = _call_name(node.func)
                if callee in self._ACQUIRE_CALLS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"lock acquisition {callee!r} inside optimistic "
                        f"read-path function {func.name!r}; the lock-free "
                        f"path must not touch the lock manager — downgrade "
                        f"via _optimistic_downgrade instead",
                    )
                elif callee is not None and callee.startswith("_locked_"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"direct call to {callee!r} from {func.name!r}; the "
                        f"Table-1 fallback must go through the single "
                        f"_optimistic_downgrade helper",
                    )


@register
class ChoicePointRegisteredRule(Rule):
    """Reorg protocol generators must block *through the scheduler*.

    A synchronous ``locks.request(...)`` / ``locks.convert(...)`` (or a
    wall-clock ``sleep``) inside a generator in ``src/repro/reorg/``
    bypasses the scheduler's choice-point API: the discrete-event clock
    never advances, the explorer (``repro.analysis.explorer``) never sees
    the blocking point, and model-checked traces silently lose coverage.
    Yield ``Acquire``/``Convert``/``Think`` ops instead.
    """

    name = "choice-point-registered"
    description = (
        "blocking operations in reorg generators go through scheduler ops "
        "(yield Acquire/Convert/Think), never synchronous lock-manager calls"
    )
    include = ("src/repro/reorg/",)

    _BLOCKING = {"request", "convert"}
    _LM_NAMES = {"locks", "lm", "lock_manager", "_lm"}

    def _is_lock_manager(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self._LM_NAMES
        if isinstance(node, ast.Name):
            return node.id in self._LM_NAMES
        return False

    def check(self, ctx: LintContext) -> Iterable[tuple[int, int, str]]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            body = list(_walk_in_function(func))
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in body):
                continue  # not a protocol generator
            for node in body:
                if not isinstance(node, ast.Call):
                    continue
                callee = _call_name(node.func)
                if (
                    callee in self._BLOCKING
                    and isinstance(node.func, ast.Attribute)
                    and self._is_lock_manager(node.func.value)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"synchronous lock-manager .{callee}() inside "
                        f"generator {func.name!r}; yield an "
                        f"{'Acquire' if callee == 'request' else 'Convert'} "
                        f"op so the scheduler registers the choice point",
                    )
                elif callee == "sleep":
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"wall-clock sleep() inside generator {func.name!r}; "
                        f"yield Think(duration) so simulated time advances "
                        f"through the scheduler",
                    )


@register
class PlacementViaPolicyRule(Rule):
    """Pass 2 and pass 3 decide *what* moves; the placement policy decides
    *where to*.  Target page ids are produced only by the
    :class:`~repro.reorg.placement.PlacementPolicy` hooks (``leaf_slots``,
    ``pass3_plan``/``resolve``) so that swapping policies — key-order vs
    vEB vs none — can never change the move machinery itself.  Arithmetic
    on a window boundary (``lease.start + i``, ``extent.start + rank``)
    inside the pass implementations is a placement decision smuggled past
    the interface; reading a boundary (to *name* the window for the
    policy) is fine."""

    name = "placement-via-policy"
    description = (
        "pass 2/3 code computes no target page ids from window boundaries "
        "(.start/.end arithmetic); placement flows through PlacementPolicy"
    )
    include = (
        "src/repro/reorg/swap.py",
        "src/repro/reorg/shrink.py",
        "src/repro/reorg/protocols.py",
        "src/repro/reorg/compact.py",
    )

    _BOUNDS = {"start", "end"}

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            for operand in (node.left, node.right):
                if (
                    isinstance(operand, ast.Attribute)
                    and operand.attr in self._BOUNDS
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"arithmetic on window boundary "
                        f"'.{operand.attr}' computes a target page id in "
                        f"pass 2/3 code; ask the PlacementPolicy "
                        f"(repro/reorg/placement.py) instead",
                    )
                    break


@register
class GapViaConfigRule(Rule):
    """Leaf gap sizing has exactly one home: the
    :func:`repro.config.leaf_gap_slots` / :func:`repro.config.gapped_leaf_fill`
    helpers (re-exported for rebuild code as
    :func:`repro.reorg.placement.gapped_leaf_fill_count`).  The builders
    that lay leaves out — bulk load and the pass 2/3 rebuild paths — must
    route every per-leaf record count through those helpers, never
    open-code slack arithmetic: two call sites each computing
    ``leaf_capacity * (1 - fraction)`` with their own rounding is how a
    bulk-loaded tree and a reorganized tree end up with different gaps.
    Flagged in the layout builders: any mention of ``leaf_gap_fraction``
    (only the config helpers may interpret the knob) and any arithmetic on
    ``leaf_capacity`` (a capacity used directly is fine; a capacity summed
    or scaled is a fill computation that belongs in the helpers)."""

    name = "gap-via-config"
    description = (
        "leaf layout builders size gaps only via the TreeConfig helpers "
        "(leaf_gap_slots / gapped_leaf_fill); no literal slack arithmetic"
    )
    include = (
        "src/repro/btree/bulkload.py",
        "src/repro/reorg/compact.py",
        "src/repro/reorg/shrink.py",
    )

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "leaf_gap_fraction"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "layout builders must not interpret 'leaf_gap_fraction' "
                    "themselves; call leaf_gap_slots()/gapped_leaf_fill() "
                    "(repro/config.py) so every builder rounds the gap the "
                    "same way",
                )
            elif isinstance(node, ast.BinOp):
                for operand in (node.left, node.right):
                    if (
                        isinstance(operand, ast.Attribute)
                        and operand.attr == "leaf_capacity"
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            "arithmetic on 'leaf_capacity' in a layout "
                            "builder is an open-coded fill/gap computation; "
                            "route it through gapped_leaf_fill() "
                            "(repro/config.py) or placement."
                            "gapped_leaf_fill_count()",
                        )
                        break


@register
class PinGuardRule(Rule):
    """Pins taken outside a ``try/finally`` or ``with`` survive any
    exception raised before the matching ``unpin``; reproflow proves the
    leak interprocedurally (pin-balance), this hint points at the habit
    that causes it while the function is still on screen."""

    name = "pin-guard"
    description = (
        "fetch(..., pin=True) lexically outside try/finally or with; "
        "advisory — reproflow's pin-balance analysis is the proof"
    )
    include = ("src/",)
    severity = "hint"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        yield from self._scan(ctx.tree, guarded=False)

    def _scan(
        self, node: ast.AST, guarded: bool
    ) -> Iterator[tuple[int, int, str]]:
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, (ast.With, ast.AsyncWith)):
                child_guarded = True
            elif isinstance(child, (ast.Try, ast.TryStar)) and (
                child.finalbody or child.handlers
            ):
                child_guarded = True
            if (
                not child_guarded
                and isinstance(child, ast.Call)
                and _call_name(child.func) == "fetch"
                and _is_true(_keyword(child, "pin"))
            ):
                yield (
                    child.lineno,
                    child.col_offset,
                    "fetch(..., pin=True) outside try/finally or with; an "
                    "exception before unpin() leaks the pin — reproflow's "
                    "pin-balance analysis checks the exception paths "
                    "interprocedurally",
                )
            yield from self._scan(child, child_guarded)
