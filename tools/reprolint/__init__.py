"""reprolint — protocol-aware static analysis for the reorganization engine.

A small AST-based lint engine with repo-specific rules that encode the
paper's correctness discipline (WAL-before-write, Table-1 locking, perf
counter registry, ...) as machine-checkable facts.  See
``docs/static_analysis.md`` for the rule catalogue and suppression syntax.

Usage::

    PYTHONPATH=tools python -m reprolint src tests
    PYTHONPATH=tools python -m reprolint --json src
    PYTHONPATH=tools python -m reprolint --list-rules
"""

from reprolint.engine import (  # noqa: F401
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

__version__ = "1.0.0"
