"""The lint engine: rule registry, suppression parsing, file walking.

Design:

* A :class:`Rule` owns a kebab-case ``name``, a short ``description`` and a
  ``check(ctx)`` generator producing ``(line, col, message)`` tuples.  Most
  rules are :mod:`ast` visitors over ``ctx.tree``.
* Rules can scope themselves with ``include``/``exclude`` path prefixes
  (posix-style, relative to the repository root).  Protocol rules target
  ``src/repro/``; hygiene rules apply everywhere.  Scoping is part of the
  rule definition, not configuration — the tool has no config file.
* Suppressions are source comments (parsed with :mod:`tokenize`, so they
  are never confused with string contents):

  - ``# reprolint: disable=rule-a,rule-b -- reason``   one line
  - ``# reprolint: disable-file=rule-a -- reason``     whole file
  - ``# reprolint: held-across -- reason``             lock-pairing escape

  Every suppression must carry a ``-- reason``; the ``suppression-reason``
  meta-rule flags ones that do not.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Directive regex per tool name (reprolint shares its suppression grammar
#: with reproflow: ``# reproflow: disable=pin-balance -- reason``).
_DIRECTIVE_RES: dict[str, re.Pattern] = {}


def _directive_re(tool: str) -> re.Pattern:
    pattern = _DIRECTIVE_RES.get(tool)
    if pattern is None:
        pattern = re.compile(
            rf"#\s*{re.escape(tool)}:\s*"
            r"(?P<directive>disable-file|disable|held-across)"
            r"(?:\s*=\s*(?P<rules>[\w,\- ]+?))?"
            r"\s*(?:--\s*(?P<reason>.+?))?\s*$"
        )
        _DIRECTIVE_RES[tool] = pattern
    return pattern


#: Matches the reprolint directive inside a comment token.
_DIRECTIVE_RE = _directive_re("reprolint")

#: Pseudo-rule name meaning "every rule" (bare ``disable`` with no list).
ALL_RULES = "*"

#: The rule name the ``held-across`` escape suppresses.
HELD_ACROSS_RULE = "lock-release-pairing"

#: The meta-rule flagging suppressions whose rule no longer fires there.
STALE_SUPPRESSION_RULE = "stale-suppression"


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: ``"error"`` findings gate CI; ``"hint"`` findings are advisory
    #: (printed, JSON-reported, but they do not fail the run).
    severity: str = "error"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def __str__(self) -> str:
        tag = self.rule if self.severity == "error" else f"{self.rule}:hint"
        return f"{self.path}:{self.line}:{self.col}: [{tag}] {self.message}"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments."""

    #: line number -> set of suppressed rule names (may contain ALL_RULES).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rules suppressed for the whole file.
    file_wide: set[str] = field(default_factory=set)
    #: lines carrying a ``held-across`` escape.
    held_across: set[int] = field(default_factory=set)
    #: (line, directive-text) of directives missing a ``-- reason``.
    missing_reason: list[tuple[int, str]] = field(default_factory=list)
    #: line -> column of the directive comment (for stale findings).
    directive_cols: dict[int, int] = field(default_factory=dict)
    #: rule name -> directive line of each ``disable-file`` entry.
    file_wide_lines: dict[str, int] = field(default_factory=dict)
    #: (rule, line) suppressions that absorbed at least one finding.
    used: set[tuple[str, int]] = field(default_factory=set)
    #: file-wide rule names that absorbed at least one finding.
    used_file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_wide:
            self.used_file_wide.add(rule)
            return True
        if ALL_RULES in self.file_wide:
            self.used_file_wide.add(ALL_RULES)
            return True
        on_line = self.by_line.get(line)
        if not on_line:
            return False
        if rule in on_line:
            self.used.add((rule, line))
            return True
        if ALL_RULES in on_line:
            self.used.add((ALL_RULES, line))
            return True
        return False

    def iter_stale(self) -> Iterator[tuple[int, int, str]]:
        """Yield ``(line, col, message)`` for suppressions that absorbed no
        finding.  Only meaningful after every rule has run on the file —
        the engine calls this on full-rule-set runs exclusively.

        ``held-across`` escapes are excluded: they are consumed inside the
        lock-release-pairing rule, so the engine cannot see their use.
        """
        for name in sorted(self.file_wide):
            if name in self.used_file_wide:
                continue
            line = self.file_wide_lines.get(name, 1)
            what = "any rule" if name == ALL_RULES else f"rule {name!r}"
            yield (
                line,
                self.directive_cols.get(line, 0),
                f"stale file-wide suppression: {what} no longer fires "
                "anywhere in this file — remove the disable-file directive",
            )
        for line in sorted(self.by_line):
            for name in sorted(self.by_line[line]):
                if name == HELD_ACROSS_RULE and line in self.held_across:
                    continue
                if (name, line) in self.used:
                    continue
                what = "any rule" if name == ALL_RULES else f"rule {name!r}"
                yield (
                    line,
                    self.directive_cols.get(line, 0),
                    f"stale suppression: {what} no longer fires on this "
                    "line — remove it from the disable directive",
                )


def parse_suppressions(source: str, *, tool: str = "reprolint") -> Suppressions:
    """Extract ``tool`` directives (default reprolint) from a file's
    comments.  reproflow passes ``tool="reproflow"`` to share the grammar
    without the two tools' directives shadowing each other."""
    directive_re = _directive_re(tool)
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = [
            (i, line.index("#"), line[line.index("#"):])
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for line, col, text in comments:
        match = directive_re.search(text)
        if match is None:
            continue
        sup.directive_cols[line] = col
        directive = match.group("directive")
        rules_text = match.group("rules")
        names = (
            {name.strip() for name in rules_text.split(",") if name.strip()}
            if rules_text
            else {ALL_RULES}
        )
        if not match.group("reason"):
            sup.missing_reason.append((line, text.strip()))
        if directive == "held-across":
            sup.held_across.add(line)
            sup.by_line.setdefault(line, set()).add(HELD_ACROSS_RULE)
        elif directive == "disable-file":
            sup.file_wide.update(names)
            for name in names:
                sup.file_wide_lines.setdefault(name, line)
        else:  # disable
            sup.by_line.setdefault(line, set()).update(names)
    return sup


@dataclass
class LintContext:
    """Everything a rule gets to look at for one file."""

    path: str  # posix path relative to the repository root
    source: str
    tree: ast.Module
    suppressions: Suppressions
    #: Repository root; rules use it to locate cross-file facts (e.g. the
    #: perf-counter registry in ``src/repro/perf.py``).
    root: Path


class Rule:
    """Base class for lint rules.  Subclass and register."""

    name: str = ""
    description: str = ""
    #: Only lint files whose relative path starts with one of these
    #: prefixes (None = every file).
    include: tuple[str, ...] | None = None
    #: Never lint files whose relative path starts with one of these.
    exclude: tuple[str, ...] = ()
    #: ``"error"`` (default) fails the lint gate; ``"hint"`` is advisory.
    severity: str = "error"

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exclude):
            return False
        if self.include is None:
            return True
        return any(path.startswith(prefix) for prefix in self.include)

    def check(self, ctx: LintContext) -> Iterable[tuple[int, int, str]]:
        raise NotImplementedError


_REGISTRY: list[Rule] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instantiated once) to the registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if any(rule.name == rule_cls.name for rule in _REGISTRY):
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY.append(rule_cls())
    return rule_cls


def all_rules() -> list[Rule]:
    """The registered rules (importing :mod:`reprolint.rules` fills this)."""
    import reprolint.rules  # noqa: F401  - registration side effect

    return list(_REGISTRY)


def _select(names: Iterable[str] | None) -> list[Rule]:
    rules = all_rules()
    if names is None:
        return rules
    wanted = set(names)
    unknown = wanted - {rule.name for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return [rule for rule in rules if rule.name in wanted]


@dataclass
class ParsedFile:
    """One file's parse result, shared between reprolint and reproflow."""

    path: Path  # absolute
    rel: str  # posix path relative to the cache root
    source: str
    tree: ast.Module | None
    error: SyntaxError | None = None


class FileCache:
    """Walks and parses files once so a combined lint+flow run never
    re-reads or re-parses the tree.  ``parse_count`` exists so tests can
    assert the single-parse property."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = (root or Path.cwd()).resolve()
        self._files: dict[Path, ParsedFile] = {}
        self.parse_count = 0

    def get(self, file_path: Path) -> ParsedFile:
        file_path = file_path.resolve()
        parsed = self._files.get(file_path)
        if parsed is not None:
            return parsed
        try:
            rel = file_path.relative_to(self.root).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        tree: ast.Module | None = None
        error: SyntaxError | None = None
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            error = exc
        self.parse_count += 1
        parsed = ParsedFile(path=file_path, rel=rel, source=source,
                            tree=tree, error=error)
        self._files[file_path] = parsed
        return parsed

    def walk(self, paths: Iterable[str | Path]) -> list[ParsedFile]:
        return [self.get(p) for p in iter_python_files(paths, self.root)]


def _syntax_error_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(
        rule="syntax-error",
        path=path,
        line=error.lineno or 1,
        col=error.offset or 0,
        message=f"file does not parse: {error.msg}",
    )


def lint_source(
    path: str,
    source: str,
    *,
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    tree: ast.Module | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob under a virtual relative ``path``.

    ``tree`` short-circuits parsing when the caller already holds the
    parsed module (see :class:`FileCache`).
    """
    path = Path(path).as_posix()
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [_syntax_error_finding(path, error)]
    ctx = LintContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        root=root or Path.cwd(),
    )
    findings: list[Finding] = []
    for rule in _select(rules):
        if not rule.applies_to(path):
            continue
        for line, col, message in rule.check(ctx):
            if ctx.suppressions.is_suppressed(rule.name, line):
                continue
            findings.append(
                Finding(rule.name, path, line, col, message, rule.severity)
            )
    if rules is None:
        # Staleness is only decidable when every rule ran: a partial run
        # cannot tell "rule no longer fires" from "rule was deselected".
        sup = ctx.suppressions
        for line, col, message in sup.iter_stale():
            # Wildcard suppressions do not silence the meta-rule — a stale
            # blanket directive would otherwise hide its own report.  Only
            # an explicit 'stale-suppression' mention does.
            if STALE_SUPPRESSION_RULE in sup.file_wide:
                sup.used_file_wide.add(STALE_SUPPRESSION_RULE)
                continue
            if STALE_SUPPRESSION_RULE in sup.by_line.get(line, ()):
                sup.used.add((STALE_SUPPRESSION_RULE, line))
                continue
            findings.append(
                Finding(STALE_SUPPRESSION_RULE, path, line, col, message)
            )
    findings.sort(key=Finding.sort_key)
    return findings


def iter_python_files(paths: Iterable[str | Path], root: Path) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files or directories), skipping
    caches and hidden directories."""
    for raw in paths:
        start = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if start.is_file():
            if start.suffix == ".py":
                yield start
            continue
        for candidate in sorted(start.rglob("*.py")):
            parts = candidate.relative_to(start).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    *,
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    cache: FileCache | None = None,
) -> list[Finding]:
    """Lint every .py file under ``paths``; returns sorted findings.

    ``root`` anchors relative-path rule scoping (default: the current
    working directory — run from the repository root).  Passing a
    :class:`FileCache` reuses its parsed ASTs (and fills it for other
    tools — reproflow runs off the same cache).
    """
    if cache is None:
        cache = FileCache(root)
    elif root is not None and cache.root != Path(root).resolve():
        raise ValueError("cache root does not match the lint root")
    findings: list[Finding] = []
    for parsed in cache.walk(paths):
        if parsed.error is not None:
            findings.append(_syntax_error_finding(parsed.rel, parsed.error))
            continue
        findings.extend(
            lint_source(
                parsed.rel, parsed.source,
                root=cache.root, rules=rules, tree=parsed.tree,
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings
