"""CLI entry point: ``python -m reprolint [--json] [--rules a,b] PATH...``.

Exit status 0 means no error-severity findings (hints may still print);
1 means error findings; 2 means usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from reprolint.engine import all_rules, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="protocol-aware static analysis for the reorganization engine",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root anchoring rule path scoping (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = "everywhere" if rule.include is None else ", ".join(rule.include)
            print(f"{rule.name:24s} [{scope}] {rule.description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        findings = lint_paths(args.paths, root=args.root, rules=rule_names)
    except (ValueError, OSError) as error:
        print(f"reprolint: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    # Hints are advisory: they print and appear in --json output, but
    # only error-severity findings fail the gate.
    return 1 if any(f.severity == "error" for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
