"""BENCH check: the explorer-off path costs nothing (ISSUE 3 satellite).

The model checker attaches via instance hooks — ``Scheduler.pick_next``,
``LockManager.grant_order`` / ``on_victim`` — all ``None`` by default, and
``Scheduler.run()`` tests ``pick_next`` exactly once per call.  Merely
*importing* ``repro.analysis.explorer`` (which is all production code ever
does) must leave the event loop and lock dispatch byte-identical.  Two
assertions:

* **Identity** (machine-independent): with the explorer imported but never
  attached, fresh Scheduler/LockManager instances have all hooks ``None``,
  and the ``bulk_insert`` + ``mixed_e2`` workloads reproduce BENCH_1.json's
  perf counters and check values exactly.  A stray always-on choice point
  would reorder grants or add heap churn and shift these.
* **Wall clock** (generous noise bound): ``bulk_insert`` stays within 2x
  of the slowest BENCH_1.json repeat — a tripwire for an accidentally
  attached recorder, not a precision benchmark.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

BENCH_1 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_1.json").read_text()
)

WORKLOADS = ["bulk_insert", "mixed_e2"]


@pytest.fixture(scope="module")
def detached_results():
    """Workloads run with the explorer imported but never attached."""
    import repro.analysis.explorer  # noqa: F401 (import is the point)

    return run_suite(WORKLOADS, repeats=3)


def test_import_leaves_hooks_detached():
    import repro.analysis.explorer  # noqa: F401
    from repro.locks.manager import LockManager
    from repro.txn.scheduler import Scheduler

    lm = LockManager()
    assert lm.grant_order is None
    assert lm.on_victim is None
    assert Scheduler(lm).pick_next is None


@pytest.mark.parametrize("workload", WORKLOADS)
def test_counters_identical_to_bench1(detached_results, workload):
    """The deterministic signature of the hot paths is unchanged."""
    expected = BENCH_1["workloads"][workload]["counters"]
    assert detached_results[workload]["counters"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_checks_identical_to_bench1(detached_results, workload):
    expected = BENCH_1["workloads"][workload]["checks"]
    assert detached_results[workload]["checks"] == expected


def test_wall_clock_within_noise_of_bench1(detached_results):
    recorded = BENCH_1["workloads"]["bulk_insert"]
    now = detached_results["bulk_insert"]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    banner("Explorer-off overhead — bulk_insert")
    print(
        f"  BENCH_1 best {recorded['wall_s']:.4f}s   "
        f"now {now['wall_s']:.4f}s   bound {bound:.4f}s"
    )
    assert now["wall_s"] <= bound, (
        f"explorer-off bulk_insert took {now['wall_s']:.4f}s, over the "
        f"{bound:.4f}s noise bound vs BENCH_1.json — is a recorder "
        f"accidentally attached?"
    )
