"""E1 — the Find-Free-Space heuristic "greatly reduces" pass-2 swaps.

Paper section 6.1: "Initial experiments showed that our algorithm can
greatly reduce the number of swaps needed at the second pass [ZS95]."

The sweep compares three empty-page policies over starting fill factors
f1 in {0.2, 0.3, 0.4, 0.5} and two degradation regimes:

* *deletion-degraded* — bulk-loaded then thinned uniformly (leaves still in
  disk order, many free pages): the paper's primary setting;
* *random-growth* — grown by random insertion then thinned (leaves
  scattered by splits): the adversarial setting where the heuristic's
  after-L constraint finds few usable pages and falls back to in-place.

Policies:

* PAPER      — first free page between L (largest finished id) and C;
* FIRST_FIT  — any first free page in the extent;
* NONE       — no new-place compaction at all (in-place only).

A swap is the expensive pass-2 operation: it usually involves two base
pages and always logs at least one full page image (sections 5-6); a move
is cheap.  The paper's claim holds when the PAPER column never needs more
swaps than the alternatives and beats naive FIRST_FIT placement decisively.
"""

import pytest

from repro.config import FreeSpacePolicy, ReorgConfig
from repro.reorg.compact import LeafCompactor
from repro.reorg.swap import SwapMovePass
from repro.reorg.unit import UnitEngine

from conftest import (
    banner,
    degrade_by_random_growth,
    degrade_uniform,
    make_db,
)

F1_VALUES = [0.2, 0.3, 0.4, 0.5]
POLICIES = [FreeSpacePolicy.PAPER, FreeSpacePolicy.FIRST_FIT, FreeSpacePolicy.NONE]
N_RECORDS = 4000


def swaps_for(f1, policy, *, build=degrade_uniform, seed=7):
    db = make_db(internal_capacity=32)
    tree = build(db, N_RECORDS, f1, seed=seed)
    engine = UnitEngine(db, tree)
    config = ReorgConfig(target_fill=0.9, free_space_policy=policy)
    LeafCompactor(db, tree, config, engine).run()
    pass2 = SwapMovePass(db, tree, engine).run()
    db.tree().validate()
    return pass2


def _sweep(build, label):
    print()
    print(label)
    print(
        f"{'f1':>5} | {'PAPER swap(move)':>17} | {'FIRST_FIT':>15} | {'NONE':>15}"
    )
    table = {}
    for f1 in F1_VALUES:
        row = {policy: swaps_for(f1, policy, build=build) for policy in POLICIES}
        table[f1] = row
        print(
            f"{f1:>5.1f} | "
            f"{row[FreeSpacePolicy.PAPER].swaps:>10}({row[FreeSpacePolicy.PAPER].moves:>4}) | "
            f"{row[FreeSpacePolicy.FIRST_FIT].swaps:>9}({row[FreeSpacePolicy.FIRST_FIT].moves:>4}) | "
            f"{row[FreeSpacePolicy.NONE].swaps:>9}({row[FreeSpacePolicy.NONE].moves:>4})"
        )
    return table


def test_e1_swap_heuristic_sweep(benchmark):
    banner("E1 — pass-2 swaps by empty-page policy (section 6.1 / [ZS95])")
    deletion = _sweep(degrade_uniform, "deletion-degraded (paper's setting)")
    scattered = _sweep(degrade_by_random_growth, "random-growth (adversarial)")

    for regime, table in (("deletion", deletion), ("scattered", scattered)):
        for f1, row in table.items():
            paper = row[FreeSpacePolicy.PAPER]
            # Never more swaps than naive placement ...
            assert paper.swaps <= row[FreeSpacePolicy.FIRST_FIT].swaps, (regime, f1)
            # ... and essentially no worse than in-place-only (the
            # adversarial regime degenerates to in-place, modulo the odd
            # placement the few successful new-place picks perturb).
            assert paper.swaps <= row[FreeSpacePolicy.NONE].swaps + 2, (regime, f1)
            assert (
                paper.operations <= row[FreeSpacePolicy.NONE].operations + 2
            ), (regime, f1)
    # "Greatly reduce": against naive placement, the reduction is dramatic
    # in the paper's own (deletion-degraded) setting.
    paper_total = sum(r[FreeSpacePolicy.PAPER].swaps for r in deletion.values())
    first_fit_total = sum(
        r[FreeSpacePolicy.FIRST_FIT].swaps for r in deletion.values()
    )
    print()
    print(
        f"deletion-degraded swap totals: PAPER={paper_total}, "
        f"FIRST_FIT={first_fit_total}"
    )
    assert paper_total < first_fit_total / 4
    benchmark.pedantic(
        lambda: swaps_for(0.3, FreeSpacePolicy.PAPER), rounds=1, iterations=1
    )


def test_e1_heuristic_robust_across_seeds(benchmark):
    """PAPER <= FIRST_FIT must hold for several delete patterns."""
    for seed in (3, 11, 29):
        paper = swaps_for(0.3, FreeSpacePolicy.PAPER, seed=seed).swaps
        first_fit = swaps_for(0.3, FreeSpacePolicy.FIRST_FIT, seed=seed).swaps
        assert paper <= first_fit, (seed, paper, first_fit)
    benchmark.pedantic(
        lambda: swaps_for(0.3, FreeSpacePolicy.PAPER, seed=3),
        rounds=1,
        iterations=1,
    )
