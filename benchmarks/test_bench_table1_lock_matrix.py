"""T1 — Table 1: the lock compatibility matrix.

Regenerates the paper's Table 1 from the *implemented* lock manager: every
cell is obtained operationally (grant a lock, request another, observe
grant / wait / protocol-violation), then the matrix is printed in the
paper's row/column order.  Blank cells are mode pairs the paper says are
never requested together; the implementation raises on them.
"""

import pytest

from repro.errors import LockProtocolViolation, RXConflictError
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import (
    GRANTED_ORDER,
    LockMode,
    REQUESTED_ORDER,
    compatibility_cell,
    format_table,
)

from conftest import banner


class Owner:
    def __init__(self, name):
        self.name = name
        self.is_reorganizer = False


def observe_cell(granted: LockMode, requested: LockMode) -> str:
    """Operationally determine one Table-1 cell from the lock manager."""
    lm = LockManager()
    holder, requester = Owner("holder"), Owner("requester")
    resource = ("page", 1)
    try:
        lm.request(holder, resource, granted)
    except LockProtocolViolation:
        return ""  # RS can never be held
    try:
        request = lm.request(
            requester, resource, requested,
            instant=(requested is LockMode.RS),
        )
    except LockProtocolViolation:
        return ""  # blank cell: never requested together
    except RXConflictError:
        return "No"  # the RX signalling variant of "not compatible"
    if request.state in (RequestState.GRANTED, RequestState.INSTANT_DONE):
        return "Yes"
    return "No"


def test_table1_matrix(benchmark):
    banner("Table 1 — Lock Compatibility (operationally reproduced)")
    width = 5
    print("Granted".ljust(9) + "".join(m.value.center(width) for m in REQUESTED_ORDER))
    observed = {}
    for granted in GRANTED_ORDER:
        cells = []
        for requested in REQUESTED_ORDER:
            cell = observe_cell(granted, requested)
            observed[(granted, requested)] = cell
            cells.append(cell.center(width))
        print(granted.value.ljust(9) + "".join(cells))
    print()
    print("(declared table for comparison)")
    print(format_table())

    # Observed behaviour must match the declared matrix cell for cell.
    for granted in GRANTED_ORDER:
        for requested in REQUESTED_ORDER:
            declared = compatibility_cell(granted, requested)
            expected = "" if declared is None else ("Yes" if declared else "No")
            assert observed[(granted, requested)] == expected, (
                granted, requested,
            )

    benchmark(lambda: [
        observe_cell(g, r) for g in GRANTED_ORDER for r in REQUESTED_ORDER
    ])


def test_paper_prose_cells(benchmark):
    """The cells the paper states in prose, re-checked operationally."""
    assert observe_cell(LockMode.S, LockMode.R) == "Yes"
    assert observe_cell(LockMode.R, LockMode.S) == "Yes"
    for mode in (LockMode.IS, LockMode.IX, LockMode.S, LockMode.X):
        assert observe_cell(LockMode.RX, mode) == "No"
        assert observe_cell(mode, LockMode.RX) == "No"
    assert observe_cell(LockMode.R, LockMode.RS) == "No"
    assert observe_cell(LockMode.R, LockMode.X) == "No"
    benchmark(lambda: observe_cell(LockMode.S, LockMode.R))
