"""E4 — log volume: careful writing shrinks MOVE records to keys only.

Paper section 5: "Instead of record content, we could use only the keys of
records if 'careful writing' by the buffer manager is enforced [LT95]. ...
(When we do swapping of leaf pages there is no way to avoid logging at
least one of the full page contents.)"  And section 6.1: "swapping cannot
take advantage of careful writing ... Since log size is a significant
factor in reorganization methods, this is important."

The experiment runs the identical full reorganization with careful writing
on and off, for several record payload sizes, and reports total log bytes,
MOVE-record bytes, and SWAP-record bytes.
"""

import pytest

from repro.config import FreeSpacePolicy, ReorgConfig
from repro.reorg.reorganizer import Reorganizer

from conftest import banner, degrade_uniform, make_db
from repro.storage.page import Record
import random

N_RECORDS = 2500
PAYLOADS = [8, 64, 256]


def degrade_with_payload(db, payload_bytes, seed=7):
    tree = db.bulk_load_tree(
        [Record(k, "x" * payload_bytes) for k in range(N_RECORDS)],
        leaf_fill=1.0,
        internal_fill=0.5,
    )
    rng = random.Random(seed)
    for key in rng.sample(range(N_RECORDS), int(N_RECORDS * 0.7)):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    return tree


def log_volume(careful, payload_bytes, policy=FreeSpacePolicy.PAPER):
    db = make_db(internal_capacity=16, careful_writing=careful)
    tree = degrade_with_payload(db, payload_bytes)
    db.log.stats.reset()
    Reorganizer(
        db, tree, ReorgConfig(target_fill=0.9, free_space_policy=policy)
    ).run()
    db.tree().validate()
    return db.log.stats


def test_e4_careful_writing_log_volume(benchmark):
    banner("E4 — reorganization log volume with/without careful writing (section 5)")
    print(
        f"{'payload':>8} {'careful':>8} {'total KB':>9} {'move KB':>8} "
        f"{'swap KB':>8} {'records':>8}"
    )
    cells = {}
    for payload in PAYLOADS:
        for careful in (True, False):
            stats = log_volume(careful, payload)
            cells[(payload, careful)] = stats
            print(
                f"{payload:>8} {str(careful):>8} "
                f"{stats.bytes_appended / 1024:>9.1f} "
                f"{stats.move_bytes / 1024:>8.1f} "
                f"{stats.swap_bytes / 1024:>8.1f} "
                f"{stats.records_appended:>8}"
            )
    for payload in PAYLOADS:
        with_cw = cells[(payload, True)]
        without = cells[(payload, False)]
        # Keys-only MOVE records do not grow with the payload; full-content
        # records do — so careful writing wins, increasingly with payload.
        assert with_cw.move_bytes < without.move_bytes
        assert with_cw.bytes_appended < without.bytes_appended
    # The saving grows with the record payload.
    small_ratio = (
        cells[(PAYLOADS[0], False)].move_bytes
        / cells[(PAYLOADS[0], True)].move_bytes
    )
    big_ratio = (
        cells[(PAYLOADS[-1], False)].move_bytes
        / cells[(PAYLOADS[-1], True)].move_bytes
    )
    print(f"\nmove-record inflation without careful writing: "
          f"{small_ratio:.1f}x at {PAYLOADS[0]}B -> {big_ratio:.1f}x at "
          f"{PAYLOADS[-1]}B payloads")
    assert big_ratio > small_ratio > 1.0
    benchmark.pedantic(lambda: log_volume(True, 64), rounds=1, iterations=1)


def test_e4_swaps_always_log_full_contents(benchmark):
    """Swaps cannot use careful writing: their log share stays heavy even
    when MOVE records are keys-only.  Compare the per-operation bytes."""
    from repro.wal.records import ReorgMoveInRecord, ReorgMoveOutRecord, ReorgSwapRecord

    from conftest import degrade_by_random_growth

    db = make_db(internal_capacity=16, careful_writing=True)
    # Random growth scatters the leaves on disk, so ordering them in pass 2
    # genuinely requires swapping (uniform deletion would leave them in
    # order and pass 2 would only move).
    tree = degrade_by_random_growth(db, N_RECORDS, 0.3)
    Reorganizer(
        db,
        tree,
        ReorgConfig(target_fill=0.9, free_space_policy=FreeSpacePolicy.NONE),
    ).run_pass1()
    reorg = Reorganizer(db, db.tree(), ReorgConfig())
    reorg.run_pass2()
    moves = []
    swaps = []
    for record in db.log.records_from(1):
        if isinstance(record, (ReorgMoveInRecord, ReorgMoveOutRecord)):
            moves.append(record.log_bytes())
        elif isinstance(record, ReorgSwapRecord):
            swaps.append(record.log_bytes())
    assert swaps, "the in-place-only setup must force swaps"
    mean_move = sum(moves) / len(moves)
    mean_swap = sum(swaps) / len(swaps)
    print(f"\nmean MOVE record: {mean_move:.0f} B; mean SWAP record: "
          f"{mean_swap:.0f} B ({mean_swap / mean_move:.1f}x)")
    assert mean_swap > 3 * mean_move
    db.tree().validate()
    benchmark(lambda: sum(r.log_bytes() for r in db.log.records_from(1)))
