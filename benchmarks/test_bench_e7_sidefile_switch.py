"""E7 — side-file catch-up convergence and the switch window.

Paper section 7: "While the reorganizer is doing catch-up, some more
updates may be appended to the side-file.  Since leaf page splits don't
happen very often, we will eventually catch up all the changes."  And at
the switch (7.4/7.5): "Usually there will only be a small number of such
changes since these are the ones made while the reorganizer is waiting for
the X lock" — updaters are blocked on base pages only during that short
window.

Two experiments:

* **convergence** — sweep the concurrent split rate (inserts behind the
  scan per scanned base page) and report side-file entries appended,
  catch-up rounds, and the residue the switch itself must apply;
* **switch window** — in the concurrency simulation, measure how long the
  X lock on the side file is held and how many transactions it delays,
  compared with the total reorganization time.
"""

import pytest

from repro.config import ReorgConfig
from repro.reorg.reorganizer import Reorganizer
from repro.storage.page import Record

from conftest import banner, degrade_uniform, make_db

N_RECORDS = 4000
SPLIT_RATES = [0, 1, 3, 6]


def run_pass3_with_split_rate(rate, seed=13):
    """Pass 3 with `rate` hot inserts behind the scan per base page."""
    import random

    db = make_db(internal_capacity=16)
    tree = degrade_uniform(db, N_RECORDS, 0.3, seed=seed)
    rng = random.Random(seed)
    deleted = sorted(
        set(range(N_RECORDS)) - {r.key for r in tree.items()}
    )

    def during_scan(shrinker):
        from repro.reorg.shrink import SCAN_DONE_KEY

        if not shrinker.scanning:
            return
        ck = shrinker.get_current()
        if ck >= SCAN_DONE_KEY:
            return
        behind = [k for k in deleted[:200] if k < ck]
        for _ in range(rate):
            if not behind:
                return
            key = behind.pop(rng.randrange(len(behind)))
            deleted.remove(key)
            tree.insert(Record(key, "hot"))

    reorg = Reorganizer(db, tree, ReorgConfig(stable_point_interval=4))
    reorg.run_pass1()
    reorg.run_pass2()
    pass3, switch = reorg.run_pass3(during_scan=during_scan)
    db.tree().validate()
    return db, pass3, switch


def test_e7_sidefile_convergence(benchmark):
    banner("E7 — side-file catch-up vs concurrent split rate (section 7)")
    print(
        f"{'splits/page':>12} {'appended':>9} {'applied':>8} "
        f"{'rounds':>7} {'at switch':>10}"
    )
    rows = {}
    for rate in SPLIT_RATES:
        db, pass3, switch = run_pass3_with_split_rate(rate)
        rows[rate] = (pass3, switch)
        print(
            f"{rate:>12} {pass3.sidefile_appended:>9} "
            f"{pass3.sidefile_applied + switch.final_catchup_entries:>8} "
            f"{pass3.catchup_rounds:>7} {switch.final_catchup_entries:>10}"
        )
    # Every appended entry is applied exactly once, whatever the rate.
    for rate, (pass3, switch) in rows.items():
        applied = pass3.sidefile_applied + switch.final_catchup_entries
        assert applied == pass3.sidefile_appended, rate
    # No activity -> empty side file; activity -> it grows with the rate.
    assert rows[0][0].sidefile_appended == 0
    assert (
        rows[SPLIT_RATES[-1]][0].sidefile_appended
        > rows[1][0].sidefile_appended
    )
    benchmark.pedantic(
        lambda: run_pass3_with_split_rate(2), rounds=1, iterations=1
    )


def test_e7_switch_window_is_short(benchmark):
    """The X-on-side-file window is a sliver of the whole reorganization,
    and only blocks base-page updaters (section 7.5)."""
    from repro.locks.modes import LockMode
    from repro.locks.resources import sidefile_lock
    from repro.reorg.protocols import ReorgProtocol, full_reorganization
    from repro.sim.workload import build_sparse_tree
    from repro.txn.scheduler import Scheduler

    db = make_db(internal_capacity=16)
    build_sparse_tree(db, n_records=N_RECORDS, fill_after=0.3)
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.05)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), unit_pause=0.02, scan_pause=0.05,
        op_duration=0.1,
    )
    window = {"acquired": None, "released": None}
    original_request = db.locks.request
    original_release = db.locks.release

    def spy_request(owner, resource, mode, **kwargs):
        request = original_request(owner, resource, mode, **kwargs)
        if resource == sidefile_lock() and mode is LockMode.X:
            window["acquired"] = sched.now
        return request

    def spy_release(owner, resource, mode):
        if resource == sidefile_lock() and mode is LockMode.X:
            window["released"] = sched.now
        return original_release(owner, resource, mode)

    db.locks.request = spy_request
    db.locks.release = spy_release
    reorg_txn = sched.spawn(
        full_reorganization(protocol), name="reorg", is_reorganizer=True
    )
    sched.run()
    total = reorg_txn.metrics.elapsed
    held = window["released"] - window["acquired"]
    print(
        f"\nreorganization ran {total:.1f} time units; the switch held the "
        f"side-file X lock for {held:.2f} ({100 * held / total:.1f}%)"
    )
    assert window["acquired"] is not None
    assert held < total * 0.05
    db.tree().validate()
    benchmark.pedantic(
        lambda: run_pass3_with_split_rate(0), rounds=1, iterations=1
    )
