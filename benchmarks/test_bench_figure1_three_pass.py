"""F1 — Figure 1: the three-pass algorithm, pass by pass.

Figure 1 illustrates sparsely populated leaves being (1) compacted,
(2) swapped into disk order, (3) capped with a shrunken upper tree.  This
benchmark regenerates the figure quantitatively: for several starting fill
factors f1 it reports the tree's health after each pass — fill factor,
leaf count, disk-order fraction, internal page count and height.
"""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig
from repro.reorg.reorganizer import Reorganizer

from conftest import banner, degrade_uniform, make_db

F1_VALUES = [0.2, 0.3, 0.4]
N_RECORDS = 4000


def run_three_passes(f1):
    # The paper's base pages hold ~200 child pointers (section 4.1); a wide
    # fanout keeps compaction groups from being cut short at base-page
    # boundaries.
    db = make_db(internal_capacity=32)
    tree = degrade_uniform(db, N_RECORDS, f1)
    rows = [("start", collect_stats(tree))]
    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    reorg.run_pass1()
    rows.append(("pass 1: compact", collect_stats(db.tree())))
    reorg.run_pass2()
    rows.append(("pass 2: swap", collect_stats(db.tree())))
    reorg.run_pass3()
    rows.append(("pass 3: shrink", collect_stats(db.tree())))
    db.tree().validate()
    return db, rows


def test_figure1_three_pass(benchmark):
    banner("Figure 1 — the three-pass algorithm (per-pass tree health)")
    all_rows = {}
    for f1 in F1_VALUES:
        _, rows = run_three_passes(f1)
        all_rows[f1] = rows
        print(f"\nf1 = {f1:.1f}, f2 = 0.9, {N_RECORDS} keys loaded")
        print(
            f"  {'stage':<16} {'fill':>6} {'leaves':>7} {'order':>6} "
            f"{'internal':>9} {'height':>7}"
        )
        for label, s in rows:
            print(
                f"  {label:<16} {s.leaf_fill:>6.2f} {s.leaf_count:>7} "
                f"{s.disk_order_fraction:>6.2f} {s.internal_count:>9} "
                f"{s.height:>7}"
            )

    for f1, rows in all_rows.items():
        start, compacted, swapped, shrunk = (s for _, s in rows)
        # Pass 1 raises the fill factor towards f2 and shrinks the leaf
        # count roughly by f2/f1 (greedy one-page-at-a-time grouping under
        # one base page leaves boundary pages partial, so the mean fill
        # lands below the 0.9 target — as in the paper's d = ceil(f2/f1)
        # average).
        assert compacted.leaf_fill > max(0.6, start.leaf_fill * 1.4)
        assert compacted.leaf_count < start.leaf_count * (f1 / 0.9) * 1.55
        # Pass 2 makes the leaves perfectly contiguous in key order.
        assert swapped.disk_order_fraction == 1.0
        # Pass 3 never grows the internal level and never touches records.
        assert shrunk.internal_count <= swapped.internal_count
        assert shrunk.height <= swapped.height
        assert shrunk.record_count == start.record_count

    benchmark.pedantic(lambda: run_three_passes(0.3), rounds=1, iterations=1)


def test_figure1_records_preserved_through_every_pass(benchmark):
    db = make_db()
    tree = degrade_uniform(db, N_RECORDS, 0.25)
    expected = [(r.key, r.payload) for r in tree.items()]
    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    reorg.run_pass1()
    assert [(r.key, r.payload) for r in db.tree().items()] == expected
    reorg.run_pass2()
    assert [(r.key, r.payload) for r in db.tree().items()] == expected
    reorg.run_pass3()
    assert [(r.key, r.payload) for r in db.tree().items()] == expected
    benchmark(lambda: sum(1 for _ in db.tree().items()))
