"""Wall-clock performance harness — the BENCH_<n>.json trajectory.

Times three representative workloads end to end and writes the results to
``BENCH_<n>.json`` at the repository root, so every PR leaves a measured
data point behind:

* ``bulk_insert``   — 20k randomized single-record inserts (splits, WAL,
  buffer churn; the write-path microcosm).
* ``mixed_e2``      — the E2 concurrency cell: 250 user transactions
  interleaved with the paper's reorganizer on the deterministic scheduler.
  The headline number.  The optimization PR targeted >= 1.5x over the
  seed baseline and landed at 1.43x here (1.73x bulk_insert, 7.58x
  reorg_20k); the residual cost is DES/lock bookkeeping that must stay
  check-identical.  See EXPERIMENTS.md "Performance".
* ``reorg_20k``     — full three-pass reorganization (compact, swap,
  shrink + switch) of a 20k-record sparse tree with one-way side pointers.
* ``reorg_20k_batched``    — the same reorganization with the batched-I/O
  layer on (group-commit WAL, elevator write-back, readahead, seek-aware
  pass 2, leaf-chain cache).  Must produce the same tree.
* ``range_scan_e6`` / ``range_scan_e6_batched`` — the E6 scenario: a full
  range scan of a randomly-grown (disk-disordered) tree through a small
  buffer pool, without and with readahead.  The check values carry the
  simulated I/O cost, so the BENCH file quantifies the batching win in
  *cost-model* units, not just wall clock.
* ``reorg_20k_sharded`` — the sharded forest (docs/sharding.md): the same
  sparse fixture reorganized as one tree, as a 1-shard forest (must be
  byte-identical) and as a 4-shard forest with one full three-pass
  reorganizer per shard.  Checks carry the simulated-clock makespans;
  the 4-shard run must be >= 2x faster with identical merged scans.
* ``churn_daemon`` — gapped leaves + fragmentation-aware auto-reorg
  daemon (docs/gapped_leaves.md): gapped vs gapless bulk load under an
  insert stream (split-count win), then DES insert/delete churn with the
  daemon off vs on (the daemon must hold cold range-scan cost roughly
  flat while the off cell degrades).

Each workload also returns deterministic *check* values (record counts,
unit/swap counts, log bytes).  Those must be bit-identical run to run and
PR to PR under the same seeds — a changed check means an optimization
changed behaviour, which the perf tests fail loudly on.  Workloads may
additionally report an ``io`` section (simulated disk / WAL deltas); those
are deterministic too but informational — not compared against baselines.

``--profile small`` shrinks every workload (fewer records / transactions)
for CI smoke runs; the checks of a small profile are its own and must not
be compared against a full-size BENCH file.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py              # print
    PYTHONPATH=src python benchmarks/perf_harness.py --write      # BENCH_<n>.json
    PYTHONPATH=src python benchmarks/perf_harness.py --write \
        --baseline /tmp/seed_timings.json --label optimized

``--baseline`` merges previously captured timings into the written file so
a single BENCH_<n>.json carries the before/after pair and the speedups.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.config import (
    DaemonConfig,
    ReorgConfig,
    ShardConfig,
    SidePointerKind,
    TreeConfig,
)
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.reorganizer import Reorganizer
from repro.shard import ParallelReorganizer, ShardedDatabase
from repro.sim.churn import ChurnSetup, run_churn_experiment, scan_digest
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.workload import WorkloadConfig
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler

try:  # perf counters land in PR 1; the harness predates them on seed code.
    from repro.perf import PERF
except ImportError:  # pragma: no cover - seed-baseline capture only
    PERF = None


# -- workloads ---------------------------------------------------------------

#: The batched-I/O configuration exercised by the ``*_batched`` workloads.
#: Every flag defaults off in TreeConfig; this is the "all on" profile.
BATCHED_FLAGS = dict(
    group_commit_window=64,
    elevator_writeback=True,
    writeback_batch=8,
    readahead_pages=16,
    seek_aware_pass2=True,
    reorg_chain_cache=True,
)


def run_bulk_insert(n_records: int = 20_000) -> dict:
    """Randomized single-record inserts into an empty tree."""
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=4096,
            internal_extent_pages=1024,
            buffer_pool_pages=512,
            side_pointers=SidePointerKind.ONE_WAY,
        )
    )
    tree = db.create_tree()
    keys = list(range(n_records))
    random.Random(1234).shuffle(keys)
    t0 = time.perf_counter()
    for key in keys:
        tree.insert(Record(key, "x" * 16))
    wall = time.perf_counter() - t0
    db.flush()
    return {
        "wall_s": wall,
        "checks": {
            "record_count": tree.record_count(),
            "log_records": db.log.stats.records_appended,
            "log_bytes": db.log.stats.bytes_appended,
        },
    }


def _e2_setup(
    n_transactions: int = 250, seed: int = 11, *, optimistic_reads: bool = False
) -> ExperimentSetup:
    """The exact cell of benchmarks/test_bench_e2_concurrency_vs_smith.py."""
    return ExperimentSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
            buffer_pool_pages=512,
            optimistic_reads=optimistic_reads,
        ),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=n_transactions,
            key_space=3000,
            mean_interarrival=0.25,
            zipf_theta=0.0,
            seed=seed,
        ),
        n_records=3000,
        fill_after=0.3,
        op_duration=0.3,
    )


def run_mixed_e2(n_transactions: int = 250) -> dict:
    """Mixed read/update workload concurrent with the paper reorganizer."""
    t0 = time.perf_counter()
    db, metrics = run_concurrent_experiment(
        _e2_setup(n_transactions), reorganizer="paper"
    )
    wall = time.perf_counter() - t0
    db.tree().validate()
    return {
        "wall_s": wall,
        "checks": {
            "completed": metrics.completed,
            "aborted": metrics.aborted,
            "blocked_txns": metrics.blocked_txns,
            "total_blocks": metrics.total_blocks,
            "rx_backoffs": metrics.rx_backoffs,
            "makespan": round(metrics.makespan, 6),
            "record_count": db.tree().record_count(),
        },
    }


def run_mixed_e2_optimistic(n_transactions: int = 250) -> dict:
    """The mixed_e2 cell re-measured with ``optimistic_reads=True``.

    Same planned workload and reorganizer; point reads and range scans go
    through the latch-free version-validated protocol, downgrading to the
    locked Table-1 path only when they observe an RX holder.  Checks carry
    the lock-manager request count and the optimistic stats so the BENCH
    file shows how much reader traffic left the lock manager.
    """
    from repro.btree.protocols import OPTIMISTIC_STATS

    OPTIMISTIC_STATS.reset()
    t0 = time.perf_counter()
    db, metrics = run_concurrent_experiment(
        _e2_setup(n_transactions, optimistic_reads=True), reorganizer="paper"
    )
    wall = time.perf_counter() - t0
    db.tree().validate()
    return {
        "wall_s": wall,
        "checks": {
            "completed": metrics.completed,
            "aborted": metrics.aborted,
            "blocked_txns": metrics.blocked_txns,
            "total_blocks": metrics.total_blocks,
            "rx_backoffs": metrics.rx_backoffs,
            "makespan": round(metrics.makespan, 6),
            "record_count": db.tree().record_count(),
            "lock_requests": db.locks.stats.requests,
            **{
                f"optimistic_{k}": v
                for k, v in OPTIMISTIC_STATS.snapshot().items()
            },
        },
    }


def _read_mostly_cell(
    *, optimistic: bool, n_records: int, n_reads: int, n_scans: int
) -> dict:
    """One mode of the read-mostly cell: point reads and range scans race
    a full three-pass reorganization on the DES.  The record set is
    invariant under reorganization, so reader results and scan digests
    must be identical whichever read protocol runs."""
    from repro.btree.protocols import reader_range_scan, reader_search
    from repro.sim.workload import build_sparse_tree

    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
            buffer_pool_pages=512,
            optimistic_reads=optimistic,
        )
    )
    tree = build_sparse_tree(db, n_records=n_records, fill_after=0.45, seed=31)
    db.flush()
    db.checkpoint()
    alive = sorted(record.key for record in tree.items())
    scheduler = Scheduler(
        db.locks, store=db.store, log=db.log, io_time=0.2, hit_time=0.01
    )
    protocol = ReorgProtocol(
        db,
        "primary",
        ReorgConfig(target_fill=0.9),
        unit_pause=0.05,
        scan_pause=0.02,
        op_duration=0.3,
    )
    protocol.abort_hook = lambda victims: [
        scheduler.abort_transaction(v, "old-tree drain timeout")
        for v in victims
    ]
    scheduler.spawn(
        full_reorganization(protocol), name="reorganizer", is_reorganizer=True
    )
    rng = random.Random(97)
    for index in range(n_reads):
        key = alive[rng.randrange(len(alive))]
        scheduler.spawn(
            reader_search(db, "primary", key, think=0.02),
            name=f"read-{index}",
            at=rng.uniform(0.0, 60.0),
        )
    span = max(1, len(alive) // (n_scans + 1))
    for index in range(n_scans):
        low = alive[index * span]
        high = alive[min(len(alive) - 1, index * span + span)]
        scheduler.spawn(
            reader_range_scan(db, "primary", low, high, think_per_page=0.01),
            name=f"scan-{index:03d}",
            at=rng.uniform(0.0, 60.0),
        )
    scheduler.run()
    if scheduler.failed:
        txn, error = scheduler.failed[0]
        raise RuntimeError(f"{txn.name} failed: {error!r}") from error
    found = 0
    scans: list[tuple[str, list[Record]]] = []
    for txn, result in scheduler.completed:
        if txn.name.startswith("read-") and result is not None:
            found += 1
        elif txn.name.startswith("scan-"):
            scans.append((txn.name, result))
    digest = hashlib.sha256()
    for _name, records in sorted(scans):
        digest.update(_scan_digest(records).encode())
    return {
        "found": found,
        "scan_digest": digest.hexdigest()[:16],
        "lock_requests": db.locks.stats.requests,
        "makespan": round(scheduler.now, 6),
    }


def run_read_mostly_e6(
    n_records: int = 2_000, n_reads: int = 1_500, n_scans: int = 12
) -> dict:
    """Read-mostly workload, locked vs optimistic read path (ISSUE 6).

    The same DES cell — seeded point reads and range scans racing a full
    three-pass reorganization — runs twice: once on the historical locked
    Table-1 protocol, once with ``optimistic_reads=True``.  Reader results
    and scan digests must be byte-identical (the record set is invariant
    under reorganization); the headline check is ``lock_reduction``, the
    ratio of lock-manager requests, which must be >= 5x — optimistic
    readers only reach the lock manager through the RX downgrade path.
    """
    from repro.btree.protocols import OPTIMISTIC_STATS

    params = dict(n_records=n_records, n_reads=n_reads, n_scans=n_scans)
    t0 = time.perf_counter()
    locked = _read_mostly_cell(optimistic=False, **params)
    OPTIMISTIC_STATS.reset()
    optimistic = _read_mostly_cell(optimistic=True, **params)
    stats = OPTIMISTIC_STATS.snapshot()
    wall = time.perf_counter() - t0
    if optimistic["scan_digest"] != locked["scan_digest"]:
        raise AssertionError(
            "optimistic scan results diverged from the locked path: "
            f"{optimistic['scan_digest']} != {locked['scan_digest']}"
        )
    if optimistic["found"] != locked["found"]:
        raise AssertionError(
            "optimistic point reads diverged from the locked path: "
            f"{optimistic['found']} != {locked['found']}"
        )
    reduction = locked["lock_requests"] / optimistic["lock_requests"]
    if reduction < 5.0:
        raise AssertionError(
            f"lock-manager request reduction {reduction:.2f}x < 5x "
            f"({locked['lock_requests']} locked vs "
            f"{optimistic['lock_requests']} optimistic)"
        )
    return {
        "wall_s": wall,
        "checks": {
            "reads_found": locked["found"],
            "scan_digest": locked["scan_digest"],
            "locked_lock_requests": locked["lock_requests"],
            "optimistic_lock_requests": optimistic["lock_requests"],
            "lock_reduction": round(reduction, 2),
            "locked_makespan": locked["makespan"],
            "optimistic_makespan": optimistic["makespan"],
            **{f"optimistic_{k}": v for k, v in stats.items()},
        },
    }


def run_reorg_20k(n_records: int = 20_000, *, batched: bool = False) -> dict:
    """Full three-pass reorganization of a sparse 20k-record tree."""
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=4096,
            internal_extent_pages=1024,
            buffer_pool_pages=512,
            side_pointers=SidePointerKind.ONE_WAY,
            **(BATCHED_FLAGS if batched else {}),
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, "x" * 16) for k in range(n_records)],
        leaf_fill=1.0,
        internal_fill=0.6,
    )
    rng = random.Random(7)
    for key in rng.sample(range(n_records), int(n_records * 0.7)):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    disk_before = db.store.disk.stats.snapshot()
    log_before = db.log.stats.snapshot()
    t0 = time.perf_counter()
    report = reorg.run()
    wall = time.perf_counter() - t0
    disk_io = db.store.disk.stats.delta(disk_before)
    log_io = db.log.stats.delta(log_before)
    final = db.tree()
    final.validate()
    return {
        "wall_s": wall,
        "checks": {
            "record_count": final.record_count(),
            "pass1_units": report.pass1.units,
            "pass2_swaps": report.pass2.swaps if report.pass2 else 0,
            "pass2_moves": report.pass2.moves if report.pass2 else 0,
            "leaves_after": report.pass1.leaves_after,
            "reorg_log_bytes": db.log.stats.reorg_bytes,
        },
        "io": {
            "reads": disk_io["reads"],
            "writes": disk_io["writes"],
            "read_cost": round(disk_io["read_cost"], 1),
            "write_cost": round(disk_io["write_cost"], 1),
            "batch_reads": disk_io["batch_reads"],
            "log_flushes": log_io["flushes"],
            "absorbed_flushes": log_io["absorbed_flushes"],
            "prefetch_hits": db.store.buffer.prefetch_hits,
            "prefetch_wasted": db.store.buffer.prefetch_wasted,
            "writeback_sweeps": db.store.buffer.writeback_sweeps,
        },
    }


def run_range_scan_e6(n_records: int = 20_000, *, batched: bool = False) -> dict:
    """E6: full range scan of a randomly-grown tree, small buffer pool.

    Random-order inserts split leaves all over the extent, so the key-order
    leaf chain is disk-disordered — the paper's motivating scan scenario.
    The pool holds a fraction of the leaf level, making the scan mostly
    cold; the ``io`` / check numbers quantify the seek bill, which the
    readahead path (``batched=True``) pays down with multi-page reads.
    """
    db = Database(
        TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=4096,
            internal_extent_pages=1024,
            buffer_pool_pages=64,
            side_pointers=SidePointerKind.ONE_WAY,
            **(BATCHED_FLAGS if batched else {}),
        )
    )
    tree = db.create_tree()
    keys = list(range(n_records))
    random.Random(1234).shuffle(keys)
    for key in keys:
        tree.insert(Record(key, "x" * 16))
    db.flush()
    disk_before = db.store.disk.stats.snapshot()
    t0 = time.perf_counter()
    records = tree.range_scan(0, n_records)
    wall = time.perf_counter() - t0
    disk_io = db.store.disk.stats.delta(disk_before)
    return {
        "wall_s": wall,
        "checks": {
            "records_returned": len(records),
            "reads": disk_io["reads"],
            "sequential_reads": disk_io["sequential_reads"],
            "seeks": disk_io["seeks"],
            "read_cost": round(disk_io["read_cost"], 1),
            "batch_reads": disk_io["batch_reads"],
        },
        "io": {
            "batch_read_pages": disk_io["batch_read_pages"],
            "prefetch_hits": db.store.buffer.prefetch_hits,
            "prefetch_wasted": db.store.buffer.prefetch_wasted,
        },
    }


def run_reorg_20k_batched(n_records: int = 20_000) -> dict:
    return run_reorg_20k(n_records, batched=True)


#: Simulated-time costs for the sharded-reorg DES runs.  Nonzero pauses /
#: op durations make the makespan reflect reorganization *work*, so the
#: single-tree vs N-shard comparison measures parallelism, not epsilon.
SHARD_DES = dict(unit_pause=0.1, scan_pause=0.1, op_duration=1.0)


def _scan_digest(records: list[Record]) -> str:
    h = hashlib.sha256()
    for r in records:
        h.update(f"{r.key}:{r.payload};".encode())
    return h.hexdigest()[:16]


def _leaf_layout_digest(store, tree) -> str:
    """Digest of (page id, records) for every leaf in key order — the
    byte-identity witness for the 1-shard vs unsharded comparison."""
    h = hashlib.sha256()
    for pid in tree.leaf_ids_in_key_order():
        leaf = store.get_leaf(pid)
        h.update(repr((pid, [(r.key, r.payload) for r in leaf.records])).encode())
    return h.hexdigest()[:16]


def _sparse_records(n_records: int) -> tuple[list[Record], list[int]]:
    """The reorg_20k fixture: full key range, 70% deleted with seed 7."""
    records = [Record(k, "x" * 16) for k in range(n_records)]
    doomed = random.Random(7).sample(range(n_records), int(n_records * 0.7))
    return records, doomed


def _sharded_sparse_db(
    n_records: int, n_shards: int, config: TreeConfig
) -> ShardedDatabase:
    sdb = ShardedDatabase(config, ShardConfig(n_shards=n_shards))
    records, doomed = _sparse_records(n_records)
    sdb.bulk_load(records, leaf_fill=1.0, internal_fill=0.6)
    for key in doomed:
        sdb.delete(key)
    sdb.flush()
    sdb.checkpoint()
    return sdb


def _des_reorg_single_tree(db: Database, tree_name: str = "primary") -> float:
    """Single-tree three-pass reorg on the DES; returns the makespan."""
    sched = Scheduler(db.locks, store=db.store, log=db.log)
    proto = ReorgProtocol(
        db,
        tree_name,
        ReorgConfig(target_fill=0.9),
        abort_hook=lambda txns: [sched.abort_transaction(t) for t in txns],
        **SHARD_DES,
    )
    sched.spawn(
        full_reorganization(proto), name="reorg-baseline", is_reorganizer=True
    )
    sched.run()
    if sched.failed:
        txn, error = sched.failed[0]
        raise RuntimeError(f"baseline reorganizer failed: {error!r}") from error
    return sched.now


def run_reorg_20k_sharded(n_records: int = 20_000, n_shards: int = 4) -> dict:
    """Sharded-forest parallel reorganization vs the single-tree baseline.

    Three DES runs over the same sparse fixture (bulk load fill 1.0/0.6,
    70% deleted, seed 7), all with identical simulated costs:

    1. unsharded ``Database`` + single ``ReorgProtocol`` — the baseline
       makespan;
    2. 1-shard ``ShardedDatabase`` — must be *byte-identical* to the
       baseline (leaf layout digest and makespan both equal);
    3. ``n_shards``-shard forest with :class:`ParallelReorganizer` — the
       headline: makespan must drop >= 2x at 4 shards while the merged
       ``range_scan`` stays identical to the baseline's.

    The wall clock covers all three runs; the interesting numbers are the
    simulated-clock makespans in ``checks``, which are deterministic.
    """
    cfg = dict(
        leaf_capacity=16,
        internal_capacity=8,
        leaf_extent_pages=4096,
        internal_extent_pages=1024,
        buffer_pool_pages=512,
        side_pointers=SidePointerKind.ONE_WAY,
    )
    t0 = time.perf_counter()

    # 1. Single-tree DES baseline.
    db = Database(TreeConfig(**cfg))
    records, doomed = _sparse_records(n_records)
    tree = db.bulk_load_tree(records, leaf_fill=1.0, internal_fill=0.6)
    for key in doomed:
        tree.delete(key)
    db.flush()
    db.checkpoint()
    base_makespan = _des_reorg_single_tree(db)
    base_tree = db.tree()
    base_tree.validate()
    base_scan = base_tree.range_scan(0, n_records)
    base_digest = _scan_digest(base_scan)
    base_layout = _leaf_layout_digest(db.store, base_tree)

    # 2. One shard: the degenerate forest must reproduce the baseline
    #    bit for bit — same leaf layout, same simulated makespan.
    sdb1 = _sharded_sparse_db(n_records, 1, TreeConfig(**cfg))
    makespan_1 = ParallelReorganizer(
        sdb1, ReorgConfig(target_fill=0.9), **SHARD_DES
    ).run()
    sdb1.validate()
    scan1_digest = _scan_digest(sdb1.range_scan(0, n_records))
    layout_1 = _leaf_layout_digest(
        sdb1.handle(0).store, sdb1.handle(0).tree()
    )

    # 3. The parallel forest.
    sdbn = _sharded_sparse_db(n_records, n_shards, TreeConfig(**cfg))
    makespan_n = ParallelReorganizer(
        sdbn, ReorgConfig(target_fill=0.9), **SHARD_DES
    ).run()
    sdbn.validate()
    scan_n = sdbn.range_scan(0, n_records)
    scan_n_digest = _scan_digest(scan_n)
    wall = time.perf_counter() - t0

    speedup = base_makespan / makespan_n
    if scan1_digest != base_digest or scan_n_digest != base_digest:
        raise AssertionError(
            "sharded range_scan diverged from the single-tree baseline"
        )
    if layout_1 != base_layout:
        raise AssertionError(
            "1-shard leaf layout is not byte-identical to unsharded"
        )
    if makespan_1 != base_makespan:
        raise AssertionError(
            f"1-shard makespan {makespan_1} != baseline {base_makespan}"
        )
    if n_shards >= 4 and speedup < 2.0:
        raise AssertionError(
            f"parallel reorg speedup {speedup:.2f}x < 2x at {n_shards} shards"
        )
    return {
        "wall_s": wall,
        "checks": {
            "record_count": len(base_scan),
            "sharded_record_count": len(scan_n),
            "scan_digest": base_digest,
            "sharded_scan_digest": scan_n_digest,
            "one_shard_layout_identical": layout_1 == base_layout,
            "makespan_baseline": round(base_makespan, 6),
            "makespan_1shard": round(makespan_1, 6),
            f"makespan_{n_shards}shard": round(makespan_n, 6),
            "reorg_speedup": round(speedup, 2),
            "shard_units": sum(
                h.stats.reorg_units for h in sdbn.handles
            ),
        },
    }


def run_range_scan_e6_batched(n_records: int = 20_000) -> dict:
    return run_range_scan_e6(n_records, batched=True)


def run_placement_policies(
    n_records: int = 20_000, n_lookups: int = 400
) -> dict:
    """Placement-policy comparison: key_order vs veb vs none (ISSUE 9).

    The reorg_20k sparse fixture is reorganized three times, once per
    :class:`~repro.config.PlacementPolicyKind`, and each resulting tree is
    measured on two axes: ``measure_descent`` (cold point lookups billed
    through the shared disk head — the axis vEB placement targets) and
    ``measure_range_scan`` (the axis key-order placement targets).

    Hard expectations, raised on violation rather than reported:

    * range-scan digests are byte-identical across all three policies (the
      record set is invariant under placement);
    * veb and key_order produce *identical leaf layouts* (a vEB order
      restricted to one level is key order) and hence identical scan cost;
    * veb strictly reduces the cold-descent read cost vs key_order — its
      parent-to-first-child hops are sequential, key_order's never are;
    * the veb upper levels land in one contiguous window.
    """
    from repro.btree.stats import measure_descent, measure_range_scan
    from repro.config import PlacementPolicyKind
    from repro.storage.page import PageKind

    records, doomed = _sparse_records(n_records)
    alive = sorted(set(range(n_records)) - set(doomed))
    probe_keys = random.Random(17).sample(alive, min(n_lookups, len(alive)))

    t0 = time.perf_counter()
    per_policy: dict[str, dict] = {}
    for kind in PlacementPolicyKind:
        db = Database(
            TreeConfig(
                leaf_capacity=16,
                internal_capacity=8,
                leaf_extent_pages=4096,
                internal_extent_pages=1024,
                buffer_pool_pages=512,
                side_pointers=SidePointerKind.ONE_WAY,
                placement_policy=kind,
            )
        )
        tree = db.bulk_load_tree(records, leaf_fill=1.0, internal_fill=0.6)
        for key in doomed:
            tree.delete(key)
        db.flush()
        db.checkpoint()
        report = Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
        final = db.tree()
        final.validate()
        db.flush()
        descent = measure_descent(final, probe_keys)
        scan = measure_range_scan(final, 0, n_records)
        internal_ids = []
        stack = [final.root_id]
        while stack:
            page = db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                internal_ids.append(page.page_id)
                stack.extend(page.children())
        per_policy[kind.value] = {
            "scan_digest": _scan_digest(final.range_scan(0, n_records)),
            "leaf_layout": _leaf_layout_digest(db.store, final),
            "descent_cost": round(descent.read_cost, 1),
            "descent_sequential": descent.sequential_reads,
            "scan_cost": round(scan.read_cost, 1),
            "pass2_ops": report.pass2.operations if report.pass2 else 0,
            "internal_pages": len(internal_ids),
            "internal_span": max(internal_ids) - min(internal_ids) + 1
            if internal_ids
            else 0,
        }
    wall = time.perf_counter() - t0

    key_order, veb, none = (
        per_policy["key_order"],
        per_policy["veb"],
        per_policy["none"],
    )
    digests = {p["scan_digest"] for p in per_policy.values()}
    if len(digests) != 1:
        raise AssertionError(
            f"range-scan digests diverged across placement policies: "
            f"{ {k: p['scan_digest'] for k, p in per_policy.items()} }"
        )
    if veb["leaf_layout"] != key_order["leaf_layout"]:
        raise AssertionError(
            "veb leaf layout differs from key_order — vEB restricted to "
            "the leaf level must be key order"
        )
    if none["pass2_ops"] != 0:
        raise AssertionError("the `none` policy must skip pass 2 entirely")
    if veb["descent_cost"] >= key_order["descent_cost"]:
        raise AssertionError(
            f"veb cold-descent cost {veb['descent_cost']} is not below "
            f"key_order's {key_order['descent_cost']}"
        )
    if veb["internal_span"] != veb["internal_pages"]:
        raise AssertionError(
            f"veb upper levels are not one contiguous window: "
            f"{veb['internal_pages']} pages span {veb['internal_span']}"
        )
    return {
        "wall_s": wall,
        "checks": {
            "record_count": len(alive),
            "lookups": len(probe_keys),
            "scan_digest": key_order["scan_digest"],
            "descent_reduction": round(
                key_order["descent_cost"] / veb["descent_cost"], 3
            ),
            **{
                f"{policy}_{metric}": value
                for policy, numbers in per_policy.items()
                for metric, value in numbers.items()
                if metric != "scan_digest"
            },
        },
    }


def run_churn_daemon(
    n_records: int = 4_000,
    n_ops: int = 3_000,
    churn_records: int = 20_000,
    churn_inserts: int = 5_000,
    gap_fraction: float = 0.25,
    split_ratio_floor: float = 2.0,
    off_floor: float = 1.5,
    on_limit: float = 1.10,
) -> dict:
    """Gapped leaves + auto-reorg daemon under sustained churn.

    Two cells, both seeded-deterministic:

    1. **Gapped vs gapless bulk load + insert churn** (synchronous):
       the same records bulk loaded with ``leaf_gap_fraction`` 0 and
       ``gap_fraction``, then the same odd-key insert stream applied to
       each.  The gapped layout must absorb inserts in-place and cut the
       leaf split count by at least ``split_ratio_floor``; both trees
       must scan to the same digest.  Per-cell wall clocks go in the
       informational section (the one non-deterministic entry there) —
       the gapped cell's win shows up as wall time too, but wall is
       never asserted.

    2. **Daemon-off vs daemon-on DES churn**: ``n_ops`` interleaved
       insert/delete updater transactions against a bulk-loaded tree
       (:mod:`repro.sim.churn`).  Without the daemon, splits scatter
       leaves and the cold range-scan cost degrades by at least
       ``off_floor``; with the :class:`repro.reorg.daemon.ReorgDaemon`
       polling the live fragmentation metrics and running the paper's
       three-pass reorg concurrently with the churn, the same stream
       must hold degradation within ``on_limit``.  Both cells must end
       with identical records (digest-checked).
    """
    assert PERF is not None, "churn_daemon needs the perf registry"
    t0 = time.perf_counter()

    # -- cell 1: gapped vs gapless bulk load + insert churn ------------------
    rng = random.Random(4242)
    insert_keys = rng.sample(range(1, 2 * churn_records, 2), churn_inserts)
    payload = "p" * 16
    cells: dict[str, dict] = {}
    for label, gap in (("gapless", 0.0), ("gapped", gap_fraction)):
        db = Database(TreeConfig(leaf_gap_fraction=gap))
        tree = db.bulk_load_tree(
            [Record(2 * k, payload) for k in range(churn_records)],
            leaf_fill=1.0,
        )
        splits0 = PERF.gap.leaf_splits
        absorbed0 = PERF.gap.absorbed_inserts
        # Time only the churn: the gapped layout pays its slack at build
        # time (more pages bulk loaded) and earns it back on every insert
        # that would otherwise split.
        cell_t0 = time.perf_counter()
        for key in insert_keys:
            tree.insert(Record(key, payload))
        cell_wall = time.perf_counter() - cell_t0
        cells[label] = {
            "splits": PERF.gap.leaf_splits - splits0,
            "absorbed": PERF.gap.absorbed_inserts - absorbed0,
            "records": len(tree.range_scan(0, 2 * churn_records)),
            "digest": scan_digest(tree.items()),
            "wall_s": cell_wall,
        }
    gapless, gapped = cells["gapless"], cells["gapped"]
    if gapless["digest"] != gapped["digest"]:
        raise AssertionError(
            "gapped layout changed tree contents: "
            f"{gapless['digest']} != {gapped['digest']}"
        )
    split_reduction = gapless["splits"] / max(1, gapped["splits"])
    if split_reduction < split_ratio_floor:
        raise AssertionError(
            f"gapped leaves cut splits only {split_reduction:.2f}x "
            f"({gapless['splits']} -> {gapped['splits']}), "
            f"need >= {split_ratio_floor}x"
        )

    # -- cell 2: daemon-off vs daemon-on DES churn ---------------------------
    setup = ChurnSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            buffer_pool_pages=256,
            leaf_gap_fraction=gap_fraction,
        ),
        daemon_config=DaemonConfig(
            poll_interval=20.0,
            frag_high=0.30,
            frag_low=0.15,
            cooldown=30.0,
            split_trigger=1,
        ),
        n_records=n_records,
        n_ops=n_ops,
    )
    des_walls: dict[str, float] = {}
    cell_t0 = time.perf_counter()
    off = run_churn_experiment(setup, daemon=False)
    des_walls["daemon_off_wall_s"] = time.perf_counter() - cell_t0
    cell_t0 = time.perf_counter()
    on = run_churn_experiment(setup, daemon=True)
    des_walls["daemon_on_wall_s"] = time.perf_counter() - cell_t0

    if off.final_digest != on.final_digest:
        raise AssertionError(
            "auto-reorg daemon changed tree contents under churn: "
            f"{off.final_digest} != {on.final_digest}"
        )
    if off.degradation < off_floor:
        raise AssertionError(
            f"daemon-off churn degraded scans only {off.degradation:.3f}x, "
            f"need >= {off_floor}x for the cell to mean anything"
        )
    if on.degradation > on_limit:
        raise AssertionError(
            f"daemon-on churn degraded scans {on.degradation:.3f}x, "
            f"must stay within {on_limit}x"
        )
    if on.reorgs < 1:
        raise AssertionError("the daemon never triggered a reorganization")
    wall = time.perf_counter() - t0

    assert on.daemon is not None
    return {
        "wall_s": wall,
        "checks": {
            "churn_records": gapless["records"],
            "gapless_splits": gapless["splits"],
            "gapped_splits": gapped["splits"],
            "gapped_absorbed": gapped["absorbed"],
            "split_reduction": round(split_reduction, 2),
            "churn_digest": gapless["digest"],
            "des_records": on.final_records,
            "des_digest": on.final_digest,
            "off_scan_cost": round(off.final_cost, 1),
            "off_degradation": round(off.degradation, 3),
            "on_scan_cost": round(on.final_cost, 1),
            "on_degradation": round(on.degradation, 3),
            "off_leaf_splits": off.leaf_splits,
            "on_absorbed": on.absorbed_inserts,
            "daemon_polls": on.daemon.polls,
            "daemon_reorgs": on.reorgs,
            "daemon_deferred_cooldown": on.daemon.deferred_cooldown,
        },
        # Wall clocks are the one informational entry here that is not
        # deterministic; they carry the gapped / daemon wall-time story.
        "io": {
            "gapless_churn_wall_s": round(gapless["wall_s"], 4),
            "gapped_churn_wall_s": round(gapped["wall_s"], 4),
            **{k: round(v, 4) for k, v in des_walls.items()},
        },
    }


WORKLOADS = {
    "bulk_insert": run_bulk_insert,
    "mixed_e2": run_mixed_e2,
    "mixed_e2_optimistic": run_mixed_e2_optimistic,
    "read_mostly_e6": run_read_mostly_e6,
    "reorg_20k": run_reorg_20k,
    "reorg_20k_batched": run_reorg_20k_batched,
    "range_scan_e6": run_range_scan_e6,
    "range_scan_e6_batched": run_range_scan_e6_batched,
    "reorg_20k_sharded": run_reorg_20k_sharded,
    "placement_policies": run_placement_policies,
    "churn_daemon": run_churn_daemon,
}

#: Per-workload overrides for ``--profile``; "full" is the empty default.
PROFILE_PARAMS: dict[str, dict[str, dict]] = {
    "full": {},
    "small": {
        "bulk_insert": {"n_records": 2_000},
        "mixed_e2": {"n_transactions": 60},
        "mixed_e2_optimistic": {"n_transactions": 60},
        "read_mostly_e6": {"n_records": 800, "n_reads": 600, "n_scans": 4},
        "reorg_20k": {"n_records": 2_000},
        "reorg_20k_batched": {"n_records": 2_000},
        "range_scan_e6": {"n_records": 2_000},
        "range_scan_e6_batched": {"n_records": 2_000},
        "reorg_20k_sharded": {"n_records": 2_000},
        "placement_policies": {"n_records": 2_000, "n_lookups": 120},
        "churn_daemon": {
            "n_records": 1_500,
            "n_ops": 1_200,
            "churn_records": 2_000,
            "churn_inserts": 500,
            "off_floor": 1.2,
            "on_limit": 1.25,
        },
    },
}


# -- suite runner ------------------------------------------------------------


def run_suite(
    names: list[str] | None = None, *, repeats: int = 3, profile: str = "full"
) -> dict:
    """Run each workload ``repeats`` times; report the fastest wall clock.

    Checks must agree across repeats (they are seeded-deterministic); a
    mismatch raises immediately rather than producing a silently-wrong
    BENCH file.
    """
    results: dict[str, dict] = {}
    overrides = PROFILE_PARAMS[profile]
    for name in names or list(WORKLOADS):
        fn = WORKLOADS[name]
        best: dict | None = None
        walls: list[float] = []
        for _ in range(max(1, repeats)):
            if PERF is not None:
                PERF.reset()
            out = fn(**overrides.get(name, {}))
            if PERF is not None:
                out["counters"] = PERF.counters.snapshot()
            walls.append(out["wall_s"])
            if best is not None and best["checks"] != out["checks"]:
                raise AssertionError(
                    f"workload {name!r} is not deterministic: "
                    f"{best['checks']} != {out['checks']}"
                )
            if best is None or out["wall_s"] < best["wall_s"]:
                best = out
        best["wall_s"] = min(walls)
        best["wall_all_s"] = [round(w, 4) for w in walls]
        results[name] = best
    return results


def next_bench_path(root: Path = REPO_ROOT) -> Path:
    """First unused BENCH_<n>.json slot at the repository root."""
    n = 1
    while (root / f"BENCH_{n}.json").exists():
        n += 1
    return root / f"BENCH_{n}.json"


def build_report(
    results: dict, *, label: str = "current", baseline: dict | None = None
) -> dict:
    """Assemble the BENCH file body, folding in a baseline if given."""
    report: dict = {"label": label, "workloads": {}}
    for name, result in results.items():
        entry = {
            "wall_s": round(result["wall_s"], 4),
            "wall_all_s": result.get("wall_all_s", []),
            "checks": result["checks"],
        }
        if "counters" in result:
            entry["counters"] = result["counters"]
        if "io" in result:
            entry["io"] = result["io"]
        if baseline and name in baseline:
            base_wall = baseline[name]["wall_s"]
            entry["baseline_wall_s"] = round(base_wall, 4)
            entry["speedup"] = round(base_wall / result["wall_s"], 2)
            base_checks = baseline[name].get("checks")
            if base_checks is not None and base_checks != result["checks"]:
                raise AssertionError(
                    f"workload {name!r} checks drifted from baseline: "
                    f"{base_checks} != {result['checks']}"
                )
        report["workloads"][name] = entry
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", nargs="*", choices=sorted(WORKLOADS), default=None
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILE_PARAMS),
        default="full",
        help="workload size profile (small = CI smoke scale)",
    )
    parser.add_argument(
        "--write", action="store_true", help="write BENCH_<n>.json at repo root"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="explicit output path"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON of earlier run_suite results to merge as the baseline",
    )
    parser.add_argument("--label", default="current")
    args = parser.parse_args(argv)

    results = run_suite(args.workloads, repeats=args.repeats, profile=args.profile)
    baseline = None
    if args.baseline is not None:
        loaded = json.loads(args.baseline.read_text())
        baseline = loaded.get("workloads", loaded)
    report = build_report(results, label=args.label, baseline=baseline)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.write or args.out:
        path = args.out or next_bench_path()
        path.write_text(text + "\n")
        print(f"\nwrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
