"""BENCH check: the batched-I/O layer off costs nothing (ISSUE 4).

Every batching flag — ``group_commit_window``, ``elevator_writeback``,
``readahead_pages``, ``seek_aware_pass2``, ``reorg_chain_cache`` — defaults
off in :class:`repro.config.TreeConfig`, and the flags-off code paths are
the pre-batching ones.  Two assertions:

* **Identity** (machine-independent): the three BENCH_1.json workloads
  (``bulk_insert``, ``mixed_e2``, ``reorg_20k``) reproduce their recorded
  perf counters and check values exactly.  Any always-on batching — a
  prefetch issued without the flag, a reordered write-back, a widened
  flush — shifts ``wal_flush_skips`` / buffer counters or the check values
  and fails here.
* **Wall clock** (generous noise bound): each workload stays within 2x of
  the slowest BENCH_1.json repeat — a tripwire for accidental flags-on
  work, not a precision benchmark.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

BENCH_1 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_1.json").read_text()
)

WORKLOADS = ["bulk_insert", "mixed_e2", "reorg_20k"]


@pytest.fixture(scope="module")
def flags_off_results():
    """The BENCH_1 workloads run on current code with default (off) flags."""
    return run_suite(WORKLOADS, repeats=3)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_counters_identical_to_bench1(flags_off_results, workload):
    """The deterministic signature of the hot paths is unchanged."""
    expected = BENCH_1["workloads"][workload]["counters"]
    assert flags_off_results[workload]["counters"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_checks_identical_to_bench1(flags_off_results, workload):
    expected = BENCH_1["workloads"][workload]["checks"]
    assert flags_off_results[workload]["checks"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wall_clock_within_noise_of_bench1(flags_off_results, workload):
    recorded = BENCH_1["workloads"][workload]
    now = flags_off_results[workload]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    banner(f"Batched-I/O-off overhead — {workload}")
    print(
        f"  BENCH_1 best {recorded['wall_s']:.4f}s   "
        f"now {now['wall_s']:.4f}s   bound {bound:.4f}s"
    )
    assert now["wall_s"] <= bound, (
        f"flags-off {workload} took {now['wall_s']:.4f}s, over the "
        f"{bound:.4f}s noise bound vs BENCH_1.json — is a batching flag "
        f"accidentally on by default?"
    )


def test_stable_page_flush_makes_no_wal_call_without_group_commit():
    """Guard for the ISSUE 5 bulk_insert regression: with group commit off,
    flushing a page whose LSN is already stable must not call into the log
    manager at all — the bookkeeping that counts absorbed flushes belongs
    to the flags-on path only."""
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import SimulatedDisk, Extent
    from repro.storage.page import LeafPage
    from repro.wal.log import LogManager
    from repro.wal.records import LeafFormatRecord

    def build(window):
        disk = SimulatedDisk([Extent("leaf", 0, 8)])
        log = LogManager(group_commit_window=window)
        pool = BufferPool(disk, 4)
        pool.set_wal(log)
        calls = []
        real_flush = log.flush
        log.flush = lambda up_to=None: (calls.append(up_to), real_flush(up_to))[1]
        page = LeafPage(0, 4)
        pool.put_new(page)
        lsn = log.append(LeafFormatRecord(page_id=0))
        pool.mark_dirty(0, lsn)
        real_flush()  # the page LSN is now stable before the page write
        calls.clear()
        pool.flush_page(0)
        return log, calls

    log_off, calls_off = build(0)
    assert calls_off == [], "flags-off stable-page flush reached the WAL"
    log_on, calls_on = build(8)
    assert calls_on, "group commit must still see the request to absorb it"
    assert log_on.stats.absorbed_flushes == 1
