"""BENCH check: the batched-I/O layer pays (ISSUE 4 tentpole).

Two kinds of evidence, both anchored to the committed BENCH files:

* **Committed trajectory** — BENCH_2.json must show the batched reorg at
  >= 1.3x the BENCH_1.json wall clock while producing the *same tree*
  (record count, leaf count, reorg log volume), and the batched E6 range
  scan at >= 1.3x lower simulated read cost with the same record set.
  These numbers were measured when the BENCH file was written; the test
  keeps the file honest.
* **Live run** — the same workloads re-run here must reproduce the
  committed deterministic checks exactly (cost-model units are
  machine-independent), and the batched reorg must beat the flags-off
  reorg on this machine by a conservative margin.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

_ROOT = Path(__file__).resolve().parent.parent
BENCH_1 = json.loads((_ROOT / "BENCH_1.json").read_text())
BENCH_2 = json.loads((_ROOT / "BENCH_2.json").read_text())

WORKLOADS = [
    "reorg_20k",
    "reorg_20k_batched",
    "range_scan_e6",
    "range_scan_e6_batched",
]


@pytest.fixture(scope="module")
def live_results():
    return run_suite(WORKLOADS, repeats=1)


# -- the committed BENCH_2.json numbers --------------------------------------


def test_committed_reorg_speedup_vs_bench1():
    base = BENCH_1["workloads"]["reorg_20k"]
    batched = BENCH_2["workloads"]["reorg_20k_batched"]
    speedup = base["wall_s"] / batched["wall_s"]
    banner("Batched reorg vs BENCH_1")
    print(
        f"  BENCH_1 {base['wall_s']:.4f}s   batched {batched['wall_s']:.4f}s"
        f"   speedup {speedup:.2f}x"
    )
    assert speedup >= 1.3


def test_committed_reorg_same_tree():
    """Batching must change the schedule, never the result."""
    base = BENCH_2["workloads"]["reorg_20k"]["checks"]
    batched = BENCH_2["workloads"]["reorg_20k_batched"]["checks"]
    for key in ("record_count", "leaves_after", "reorg_log_bytes"):
        assert batched[key] == base[key], key
    # And the flags-off run recorded next to it matches BENCH_1 exactly.
    assert base == BENCH_1["workloads"]["reorg_20k"]["checks"]


def test_committed_scan_read_cost_improvement():
    base = BENCH_2["workloads"]["range_scan_e6"]["checks"]
    batched = BENCH_2["workloads"]["range_scan_e6_batched"]["checks"]
    assert batched["records_returned"] == base["records_returned"]
    ratio = base["read_cost"] / batched["read_cost"]
    banner("Batched E6 range scan read cost")
    print(
        f"  flags-off {base['read_cost']}   batched {batched['read_cost']}"
        f"   improvement {ratio:.2f}x"
    )
    assert ratio >= 1.3
    # Readahead turns seeks into sequential transfers, it does not skip
    # pages: the batched scan still reads every leaf it needs.
    assert batched["seeks"] < base["seeks"]
    assert batched["sequential_reads"] > base["sequential_reads"]


# -- live reproduction -------------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
def test_live_checks_match_bench2(live_results, workload):
    """Cost-model checks are machine-independent and must reproduce."""
    expected = BENCH_2["workloads"][workload]["checks"]
    assert live_results[workload]["checks"] == expected


def test_live_batched_reorg_is_faster(live_results):
    base = live_results["reorg_20k"]["wall_s"]
    batched = live_results["reorg_20k_batched"]["wall_s"]
    banner("Live batched reorg speedup")
    print(f"  flags-off {base:.4f}s   batched {batched:.4f}s   {base / batched:.2f}x")
    # Committed speedup is ~2x; 1.2x leaves room for machine noise.
    assert base / batched >= 1.2
