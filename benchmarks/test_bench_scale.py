"""Scale smoke: wall-clock timings of the full pipeline at growing sizes.

Not a paper artifact — a regression guard that the simulator stays usable
at the tree sizes the other experiments assume, and the one benchmark file
where pytest-benchmark's actual timing (rather than the simulated clock)
is the point.
"""

import random

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.reorganizer import Reorganizer
from repro.storage.page import Record

from conftest import banner


def build(n_records):
    db = Database(
        TreeConfig(
            leaf_capacity=32,
            internal_capacity=32,
            leaf_extent_pages=max(1024, n_records // 8),
            internal_extent_pages=1024,
            buffer_pool_pages=1024,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, "x" * 8) for k in range(n_records)],
        leaf_fill=1.0,
        internal_fill=0.6,
    )
    rng = random.Random(5)
    for key in rng.sample(range(n_records), int(n_records * 0.7)):
        tree.delete(key)
    return db


@pytest.mark.parametrize("n_records", [5_000, 20_000])
def test_scale_full_reorganization(benchmark, n_records):
    db = build(n_records)

    def full():
        Reorganizer(db, db.tree(), ReorgConfig(target_fill=0.9)).run()
        return db

    result = benchmark.pedantic(full, rounds=1, iterations=1)
    tree = result.tree()
    tree.validate()
    assert tree.record_count() == int(n_records * 0.3)


def test_scale_point_lookups(benchmark):
    db = build(20_000)
    Reorganizer(db, db.tree(), ReorgConfig()).run()
    tree = db.tree()
    live = [r.key for r in tree.items()]

    def lookups():
        return sum(1 for k in live[:500] if tree.search(k) is not None)

    assert benchmark(lookups) == 500


def test_scale_report(benchmark):
    banner("Scale smoke — real (not simulated) time, 20k-record pipeline")
    import time

    db = build(20_000)
    t0 = time.perf_counter()
    report = Reorganizer(db, db.tree(), ReorgConfig(target_fill=0.9)).run()
    elapsed = time.perf_counter() - t0
    print(
        f"records=6000 live, pass1 units={report.pass1.units}, "
        f"pass2 ops={report.pass2.operations}, "
        f"pass3 base pages={report.pass3.base_pages_read}, "
        f"total {elapsed:.2f}s wall"
    )
    db.tree().validate()
    assert elapsed < 120  # generous guard against pathological regressions
    benchmark(lambda: db.tree().record_count())
