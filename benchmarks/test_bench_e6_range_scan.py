"""E6 — the motivation: sparse, scattered trees slow range queries down.

Paper section 1: "the leaf pages within a key range ... are not in
contiguous disk space.  This will require more disk read time for a range
query.  Large numbers of deletions will cause the pages ... to be sparse
... it will take more page reads for a sparsely populated B+-tree than for
a normal (unsparse) one."

The experiment degrades a tree by random growth + thinning, measures
range-scan I/O (page reads, seeks, modelled read cost with a 10x seek
penalty) for scan widths of 10 / 100 / 1000 records, after each pass.
"""

import pytest

from repro.btree.stats import measure_range_scan
from repro.config import ReorgConfig
from repro.reorg.reorganizer import Reorganizer

from conftest import banner, degrade_by_random_growth, make_db

N_RECORDS = 5000
WIDTHS = [10, 100, 1000]


def scan_costs(tree, live_keys):
    """Cost of scans of each width starting at the 10th percentile key."""
    start = live_keys[len(live_keys) // 10]
    costs = {}
    for width in WIDTHS:
        high_index = min(len(live_keys) - 1, len(live_keys) // 10 + width - 1)
        high = live_keys[high_index]
        costs[width] = measure_range_scan(tree, start, high)
    return costs


def test_e6_scan_cost_by_pass(benchmark):
    banner("E6 — range-scan I/O before/after each pass (section 1 motivation)")
    db = make_db(internal_capacity=16, leaf_extent_pages=4096)
    tree = degrade_by_random_growth(db, N_RECORDS, 0.3)
    live_keys = [r.key for r in tree.items()]
    db.store.flush_all()

    stages = [("degraded", scan_costs(tree, live_keys))]
    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    reorg.run_pass1()
    db.store.flush_all()
    stages.append(("after pass 1", scan_costs(db.tree(), live_keys)))
    reorg.run_pass2()
    db.store.flush_all()
    stages.append(("after pass 2", scan_costs(db.tree(), live_keys)))
    reorg.run_pass3()
    db.store.flush_all()
    stages.append(("after pass 3", scan_costs(db.tree(), live_keys)))
    db.tree().validate()

    print(f"{'stage':<14}" + "".join(
        f" | {'w=' + str(w):>6} {'pages':>6} {'seeks':>6} {'cost':>8}"
        for w in WIDTHS
    ))
    for label, costs in stages:
        row = f"{label:<14}"
        for width in WIDTHS:
            c = costs[width]
            row += f" | {'':>6} {c.pages_read:>6} {c.seeks:>6} {c.read_cost:>8.0f}"
        print(row)

    degraded = stages[0][1]
    compacted = stages[1][1]
    swapped = stages[2][1]
    final = stages[3][1]
    for width in WIDTHS:
        # Same records come back at every stage.
        counts = {s[1][width].records_returned for s in stages}
        assert len(counts) == 1
        # Pass 1 reduces the page count (sparseness fixed) ...
        assert compacted[width].pages_read <= degraded[width].pages_read
        # ... pass 2 removes the seeks (disk order fixed) ...
        assert swapped[width].seeks <= max(degraded[width].seeks, 1)
        # ... and the final cost is decisively lower for wide scans.
    assert final[1000].read_cost < degraded[1000].read_cost / 3
    assert final[1000].seeks <= 2
    benchmark.pedantic(
        lambda: scan_costs(db.tree(), live_keys), rounds=1, iterations=1
    )


def test_e6_wide_scan_crossover(benchmark):
    """Narrow scans barely notice the degradation; wide scans suffer —
    and the reorganization gain grows with the scan width."""
    db = make_db(internal_capacity=16, leaf_extent_pages=4096)
    tree = degrade_by_random_growth(db, N_RECORDS, 0.3)
    live_keys = [r.key for r in tree.items()]
    db.store.flush_all()
    before = scan_costs(tree, live_keys)
    Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
    db.store.flush_all()
    after = scan_costs(db.tree(), live_keys)
    gains = {
        w: before[w].read_cost / max(after[w].read_cost, 1e-9) for w in WIDTHS
    }
    print("\nscan-cost gain by width: " + ", ".join(
        f"w={w}: {gains[w]:.1f}x" for w in WIDTHS
    ))
    assert gains[1000] > gains[10]
    assert gains[1000] > 3.0
    benchmark.pedantic(
        lambda: scan_costs(db.tree(), live_keys), rounds=1, iterations=1
    )
