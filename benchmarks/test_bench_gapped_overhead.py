"""BENCH check: gapped leaves + the auto-reorg daemon off cost nothing
(ISSUE 10).

``leaf_gap_fraction`` defaults to 0.0 in :class:`repro.config.TreeConfig`
and no :class:`repro.reorg.daemon.ReorgDaemon` runs unless a workload
spawns one, so the default write and rebuild paths must be byte-identical
to BENCH_5.json (the last BENCH recorded before gapped leaves landed).
Three assertion families:

* **Identity** (machine-independent): the gap-relevant workloads —
  ``mixed_e2`` (insert/split path), ``range_scan_e6`` (bulk load + scan)
  and ``placement_policies`` (pass 2/3 rebuild fill arithmetic, now
  routed through ``gapped_leaf_fill_count``) — reproduce their recorded
  perf counters and check values exactly.  Any always-on gap — a slack
  slot reserved at gap 0.0, a changed fill clamp, a fragmentation-stats
  I/O — shifts the counters or checks and fails here.
* **Wall clock** (generous noise bound): each workload stays within 2x of
  the slowest BENCH_5.json repeat — a tripwire for accidental flags-on
  work, not a precision benchmark.
* **Headline**: BENCH_6.json carries the ISSUE 10 acceptance numbers
  (split reduction, daemon-off degradation, daemon-on flatness).
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

BENCH_5 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_5.json").read_text()
)

WORKLOADS = ["mixed_e2", "range_scan_e6", "placement_policies"]


@pytest.fixture(scope="module")
def flags_off_results():
    """The BENCH_5 gap-relevant workloads run on current code, gap off."""
    return run_suite(WORKLOADS, repeats=3)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_counters_identical_to_bench5(flags_off_results, workload):
    """The deterministic signature of the default paths is unchanged."""
    expected = BENCH_5["workloads"][workload]["counters"]
    assert flags_off_results[workload]["counters"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_checks_identical_to_bench5(flags_off_results, workload):
    expected = BENCH_5["workloads"][workload]["checks"]
    assert flags_off_results[workload]["checks"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wall_clock_within_noise_of_bench5(flags_off_results, workload):
    recorded = BENCH_5["workloads"][workload]
    now = flags_off_results[workload]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    banner(f"Gapped-off overhead — {workload}")
    print(
        f"  BENCH_5 best {recorded['wall_s']:.4f}s   "
        f"now {now['wall_s']:.4f}s   bound {bound:.4f}s"
    )
    assert now["wall_s"] <= bound, (
        f"flags-off {workload} took {now['wall_s']:.4f}s, over the "
        f"{bound:.4f}s noise bound vs BENCH_5.json — is the gapped leaf "
        f"layout accidentally on by default?"
    )


def test_churn_daemon_headline_is_recorded():
    """BENCH_6.json carries the ISSUE 10 acceptance numbers: gapped bulk
    load + churn cuts leaf splits >= 2x with identical contents, the
    daemon-off churn degrades range scans >= 1.5x, and the daemon holds
    the same churn within ~10% (run_churn_daemon raises before returning
    checks if any clause fails)."""
    bench_6 = json.loads(
        (Path(__file__).resolve().parent.parent / "BENCH_6.json").read_text()
    )
    checks = bench_6["workloads"]["churn_daemon"]["checks"]
    assert checks["split_reduction"] >= 2.0
    assert checks["off_degradation"] >= 1.5
    assert checks["on_degradation"] <= 1.10
    assert checks["daemon_reorgs"] >= 1
    assert checks["gapped_absorbed"] > 0
