"""E5 — granularity and transaction overhead: d-page units vs. two blocks.

Paper section 8:

* "Better granularity.  No matter what the new page fill factor is, each
  transaction in [Smi90] will only deal with two blocks (pages). ...  In
  our method, if we do in-place compaction, we may compact several pages
  into one."  (On average d = ceil(f2/f1) pages per unit, section 6.)
* "Less transaction overhead.  [Smi90] uses one transaction for each
  reorganization operation ... In our method, the reorganizer runs in the
  background as one process."

The sweep varies f2/f1 in {2, 3, 4} (by f1 = 0.9/d) and compares units of
work, pages per unit, and lock acquisitions for the compaction phase.
"""

import math

import pytest

from repro.config import ReorgConfig
from repro.baseline.smith90 import Smith90Reorganizer
from repro.reorg.compact import LeafCompactor
from repro.wal.records import ReorgBeginRecord

from conftest import banner, degrade_uniform, make_db

N_RECORDS = 3000
RATIOS = [2, 3, 4]


def paper_compaction(f1):
    db = make_db(internal_capacity=32)
    tree = degrade_uniform(db, N_RECORDS, f1)
    stats = LeafCompactor(db, tree, ReorgConfig(target_fill=0.9)).run()
    begins = [
        r for r in db.log.records_from(1) if isinstance(r, ReorgBeginRecord)
    ]
    pages_per_unit = (
        sum(len(b.leaf_pages) for b in begins) / len(begins) if begins else 0
    )
    db.tree().validate()
    return stats, pages_per_unit


def smith_compaction(f1):
    db = make_db(internal_capacity=32)
    tree = degrade_uniform(db, N_RECORDS, f1)
    smith = Smith90Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    smith.run_compaction()
    db.tree().validate()
    return smith.stats


def test_e5_units_of_work(benchmark):
    banner("E5 — compaction granularity: d-page units vs two-block txns (section 8)")
    print(
        f"{'f2/f1':>6} {'f1':>5} | {'paper units':>11} {'pages/unit':>11} | "
        f"{'smith txns':>10} {'file locks':>11}"
    )
    rows = {}
    for d in RATIOS:
        f1 = 0.9 / d
        paper, pages_per_unit = paper_compaction(f1)
        smith = smith_compaction(f1)
        rows[d] = (paper, pages_per_unit, smith)
        print(
            f"{d:>6} {f1:>5.2f} | {paper.units:>11} {pages_per_unit:>11.1f} | "
            f"{smith.transactions:>10} {smith.file_locks:>11}"
        )
    for d, (paper, pages_per_unit, smith) in rows.items():
        # Units compact ~d pages each (the paper's average), so the paper's
        # method needs far fewer units than Smith's pairwise merges ...
        assert pages_per_unit > max(2.0, d * 0.6), d
        assert paper.units < smith.transactions, d
        # ... and Smith pays one whole-file lock per transaction.
        assert smith.file_locks == smith.transactions
    # Granularity improves with sparser trees (larger d).
    assert rows[4][1] > rows[2][1]
    benchmark.pedantic(lambda: paper_compaction(0.3), rounds=1, iterations=1)


def test_e5_operations_to_reach_same_fill(benchmark):
    """Transaction overhead: [Smi90] needs one transaction per two-block
    operation, so reaching the same compaction result takes many more
    units of work — each with its own begin/commit and whole-file lock.
    "These will cause more transaction overhead and locking overhead."
    """
    from repro.btree.stats import collect_stats

    results = {}
    for label in ("paper", "smith90"):
        db = make_db(internal_capacity=32)
        tree = degrade_uniform(db, N_RECORDS, 0.3)
        if label == "paper":
            stats = LeafCompactor(db, tree, ReorgConfig(target_fill=0.9)).run()
            ops = stats.units
        else:
            smith = Smith90Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
            smith.run_compaction()
            ops = smith.stats.transactions
        results[label] = (ops, collect_stats(db.tree()).leaf_fill)
        db.tree().validate()
    paper_ops, paper_fill = results["paper"]
    smith_ops, smith_fill = results["smith90"]
    print(
        f"\npaper:   {paper_ops} units        -> fill {paper_fill:.2f}"
        f"\nsmith90: {smith_ops} transactions -> fill {smith_fill:.2f}"
    )
    # Comparable end state, far fewer units of work (hence far less
    # transaction + file-lock overhead).
    assert paper_fill >= smith_fill * 0.9
    assert paper_ops < smith_ops * 0.8
    benchmark.pedantic(lambda: paper_compaction(0.3), rounds=1, iterations=1)
