"""BENCH check: the race-detector-off path costs nothing (ISSUE 7).

Like the sanitizer, the race detector works by class-level patching at
``install()`` time; merely importing :mod:`repro.analysis.racedetect` —
which is all production code ever does — must leave the hot paths
untouched.  Two assertions against BENCH_4.json (the optimistic-read
headline report, whose workloads exercise the exact funnel the detector
wraps):

* **Identity** (machine-independent): with the detector imported but not
  installed, every patched method is the original function, and the
  ``read_mostly_e6`` + ``mixed_e2_optimistic`` workloads reproduce
  BENCH_4.json's perf counters and invariant checks byte-for-byte.  A
  vector-clock update or page-state probe left behind in a hot path
  would shift these.
* **Wall clock** (generous noise bound): both workloads stay within 2x
  of the slowest BENCH_4.json repeat.  A tripwire for an accidentally
  always-on detector, not a precision benchmark — CI machines vary.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

WORKLOADS = ["read_mostly_e6", "mixed_e2_optimistic"]

BENCH_4 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_4.json").read_text()
)


@pytest.fixture(scope="module")
def optimistic_off():
    """The BENCH_4 optimistic workloads with racedetect importable but
    never installed."""
    import repro.analysis.racedetect as racedetect

    assert racedetect.active() is None, "detector must be off for this bench"
    return run_suite(WORKLOADS, repeats=3)


def test_import_does_not_patch():
    import repro.analysis.racedetect as racedetect
    from repro.locks.manager import LockManager
    from repro.storage.buffer import BufferPool
    from repro.storage.store import StorageManager
    from repro.txn.scheduler import Scheduler
    from repro.wal.log import LogManager

    if racedetect.active() is not None:
        pytest.skip("detector installed session-wide; off-path not testable")
    for cls, attr in [
        (BufferPool, "fetch"),
        (BufferPool, "mark_dirty"),
        (BufferPool, "put_new"),
        (BufferPool, "drop"),
        (LockManager, "request"),
        (LockManager, "release"),
        (LockManager, "convert"),
        (Scheduler, "spawn"),
        (Scheduler, "_step"),
        (LogManager, "append"),
        (LogManager, "flush"),
        (StorageManager, "__init__"),
    ]:
        fn = getattr(cls, attr)
        assert not hasattr(fn, "__wrapped__"), f"{cls.__name__}.{attr} patched"


@pytest.mark.parametrize("workload", WORKLOADS)
def test_counters_identical_to_bench4(optimistic_off, workload):
    """The deterministic signature of the hot paths is unchanged."""
    expected = BENCH_4["workloads"][workload]["counters"]
    assert optimistic_off[workload]["counters"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_checks_identical_to_bench4(optimistic_off, workload):
    expected = BENCH_4["workloads"][workload]["checks"]
    assert optimistic_off[workload]["checks"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wall_clock_within_noise_of_bench4(optimistic_off, workload):
    recorded = BENCH_4["workloads"][workload]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    now = optimistic_off[workload]["wall_s"]
    banner(f"Race-detector-off overhead — {workload}")
    print(
        f"  BENCH_4 best {recorded['wall_s']:.4f}s   "
        f"now {now:.4f}s   bound {bound:.4f}s"
    )
    assert now <= bound, (
        f"detector-off {workload} took {now:.4f}s, over the {bound:.4f}s "
        f"noise bound vs BENCH_4.json — is the race detector accidentally "
        f"installed?"
    )
