"""BENCH check: the sanitizer-off path costs nothing (ISSUE 2 satellite).

The sanitizer works by class-level patching at ``install()`` time, so
merely *importing* it — which is all production code ever does — must
leave the hot paths untouched.  Two assertions:

* **Identity** (machine-independent): with the sanitizer imported but not
  installed, every patched method is byte-for-byte the original function,
  and the ``bulk_insert`` workload reproduces BENCH_1.json's perf counters
  exactly — same fast-path grants, same WAL-flush skips, same buffer hit
  pattern.  Any shadow check left behind in a hot path would shift these.
* **Wall clock** (generous noise bound): ``bulk_insert`` stays within 2x
  of the slowest BENCH_1.json repeat.  This is a tripwire for an
  accidentally always-on sanitizer (which costs well over 2x), not a
  precision benchmark — CI machines vary.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

BENCH_1 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_1.json").read_text()
)


@pytest.fixture(scope="module")
def bulk_insert_off():
    """bulk_insert with the sanitizer importable but never installed."""
    import repro.analysis.sanitizer as sanitizer

    assert sanitizer.active() is None, "sanitizer must be off for this bench"
    return run_suite(["bulk_insert"], repeats=3)["bulk_insert"]


def test_import_does_not_patch():
    import repro.analysis.sanitizer as sanitizer
    from repro.locks.manager import LockManager
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import SimulatedDisk
    from repro.txn.scheduler import Scheduler

    if sanitizer.active() is not None:
        pytest.skip("sanitizer installed session-wide; off-path not testable")
    for cls, attr in [
        (LockManager, "request"),
        (LockManager, "release"),
        (BufferPool, "fetch"),
        (BufferPool, "mark_dirty"),
        (SimulatedDisk, "write"),
        (Scheduler, "_step"),
    ]:
        fn = getattr(cls, attr)
        assert not hasattr(fn, "__wrapped__"), f"{cls.__name__}.{attr} patched"


def test_counters_identical_to_bench1(bulk_insert_off):
    """The deterministic signature of the hot paths is unchanged."""
    expected = BENCH_1["workloads"]["bulk_insert"]["counters"]
    assert bulk_insert_off["counters"] == expected


def test_checks_identical_to_bench1(bulk_insert_off):
    expected = BENCH_1["workloads"]["bulk_insert"]["checks"]
    assert bulk_insert_off["checks"] == expected


def test_wall_clock_within_noise_of_bench1(bulk_insert_off):
    recorded = BENCH_1["workloads"]["bulk_insert"]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    banner("Sanitizer-off overhead — bulk_insert")
    print(
        f"  BENCH_1 best {recorded['wall_s']:.4f}s   "
        f"now {bulk_insert_off['wall_s']:.4f}s   bound {bound:.4f}s"
    )
    assert bulk_insert_off["wall_s"] <= bound, (
        f"sanitizer-off bulk_insert took {bulk_insert_off['wall_s']:.4f}s, "
        f"over the {bound:.4f}s noise bound vs BENCH_1.json — is the "
        f"sanitizer accidentally installed?"
    )
