"""Ablation — unit output size vs. user blocking (section 6).

"We choose to construct one new leaf page at a time for the leaf page
reorganization.  While we could construct more than one page, it would
require the reorganization unit to hold locks longer, thus it will block
more user transactions."

The ablation runs the same concurrent workload against pass 1 configured
with max_unit_output_pages ∈ {1, 2, 4} and measures both sides of the
trade-off: user wait times (locks held ~k× longer per unit) against the
number of units (transaction-overhead analogue).
"""

import pytest

from repro.btree.protocols import reader_search, updater_insert
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol
from repro.sim.metrics import collect_metrics
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler

from conftest import banner

N_RECORDS = 3000
UNIT_SIZES = [1, 2, 4]


def run_with_unit_size(n_pages):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=32,
            leaf_extent_pages=2048,
            internal_extent_pages=512,
            buffer_pool_pages=256,
        )
    )
    tree = build_sparse_tree(db, n_records=N_RECORDS, fill_after=0.3)
    live = [r.key for r in tree.items()]
    db.flush()
    db.checkpoint()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    config = ReorgConfig(target_fill=0.9, max_unit_output_pages=n_pages)
    protocol = ReorgProtocol(
        db, "primary", config, unit_pause=0.02, op_duration=0.25
    )
    reorg_txn = sched.spawn(
        protocol.pass1(), name="reorg", is_reorganizer=True
    )
    # A dense reader stream: enough collisions with the reorganizer's RX
    # windows that residual waits become measurable.
    for i in range(700):
        if i % 7 == 0:
            sched.spawn(
                updater_insert(db, "primary", Record(100_000 + i, "w")),
                at=0.05 * i,
            )
        else:
            sched.spawn(
                reader_search(db, "primary", live[(i * 13) % len(live)]),
                at=0.05 * i,
            )
    sched.run()
    assert sched.failed == []
    metrics = collect_metrics(sched, reorg_txn=reorg_txn)
    units = sched.completed[-1][1]["units"] if isinstance(
        sched.completed[-1][1], dict
    ) else next(
        result["units"] for txn, result in sched.completed if txn is reorg_txn
    )
    db.tree().validate()
    return metrics, units


def test_ablation_unit_output_size(benchmark):
    banner("Ablation — unit output size vs user blocking (section 6)")
    print(
        f"{'pages/unit':>11} {'units':>6} {'blocked':>8} {'rx-backoffs':>12} "
        f"{'mean wait':>10} {'max wait':>9}"
    )
    rows = {}
    for n_pages in UNIT_SIZES:
        metrics, units = run_with_unit_size(n_pages)
        rows[n_pages] = (metrics, units)
        print(
            f"{n_pages:>11} {units:>6} {metrics.blocked_txns:>8} "
            f"{metrics.rx_backoffs:>12} {metrics.mean_wait:>10.3f} "
            f"{metrics.max_wait:>9.3f}"
        )
    # Bigger units = fewer units of work (less per-unit overhead) ...
    assert rows[4][1] < rows[1][1] / 2
    # ... but a colliding transaction waits out a longer RX window: the
    # worst-case user wait grows with the unit size.
    assert rows[4][0].max_wait > rows[1][0].max_wait
    benchmark.pedantic(lambda: run_with_unit_size(2), rounds=1, iterations=1)
