"""Hot-path perf smoke: the harness's checks must stay byte-identical.

Runs the three perf-harness workloads once each (``-m bench`` selects this
file; it is excluded from the tier-1 ``tests/`` run by ``testpaths``) and
asserts every deterministic check value against the constants captured from
the seed revision.  Wall-clock is printed, never asserted — CI machines
vary — but a changed swap count, blocking structure, or log volume means an
"optimization" changed behaviour, and fails here loudly.
"""

import pytest

from conftest import banner
from perf_harness import WORKLOADS, run_suite

pytestmark = pytest.mark.bench

#: Check values captured from the seed revision; every later revision must
#: reproduce them exactly under the same seeds.
SEED_CHECKS = {
    "bulk_insert": {
        "record_count": 20000,
        "log_records": 28588,
        "log_bytes": 2254488,
    },
    "mixed_e2": {
        "completed": 250,
        "aborted": 0,
        "blocked_txns": 5,
        "total_blocks": 5,
        "rx_backoffs": 1,
        "makespan": 58.098459,
        "record_count": 929,
    },
    "reorg_20k": {
        "record_count": 6000,
        "pass1_units": 434,
        "pass2_swaps": 0,
        "pass2_moves": 609,
        "leaves_after": 612,
        "reorg_log_bytes": 568865,
    },
    # Batched-I/O workloads (added with BENCH_2.json): batching must change
    # the schedule, never the result — the batched reorg reproduces the
    # flags-off tree exactly, and both scans return every record.
    "reorg_20k_batched": {
        "record_count": 6000,
        "pass1_units": 434,
        "pass2_swaps": 0,
        "pass2_moves": 609,
        "leaves_after": 612,
        "reorg_log_bytes": 568865,
    },
    "range_scan_e6": {
        "records_returned": 20000,
        "reads": 1779,
        "sequential_reads": 0,
        "seeks": 1779,
        "read_cost": 17790.0,
        "batch_reads": 0,
    },
    # Sharded-forest workload (added with BENCH_3.json): the forest must
    # reproduce the unsharded tree bit-for-bit at one shard (layout and
    # scan digest), return the identical merged scan at four, and cut the
    # simulated reorganization makespan by the parallelism the paper's
    # section 9 sketches.
    "reorg_20k_sharded": {
        "record_count": 6000,
        "sharded_record_count": 6000,
        "scan_digest": "4dcbebbe7b63a0a1",
        "sharded_scan_digest": "4dcbebbe7b63a0a1",
        "one_shard_layout_identical": True,
        "makespan_baseline": 1178.6,
        "makespan_1shard": 1178.6,
        "makespan_4shard": 311.5,
        "reorg_speedup": 3.78,
        "shard_units": 452,
    },
    "range_scan_e6_batched": {
        "records_returned": 20000,
        "reads": 2141,
        "sequential_reads": 1468,
        "seeks": 673,
        "read_cost": 8198.0,
        "batch_reads": 308,
    },
    # Optimistic-read workloads (added with BENCH_4.json): latch-free
    # version-validated descents and scans must change lock traffic, never
    # results — the optimistic mixed cell completes the same transactions
    # (its blocking structure differs because readers no longer queue), and
    # the read-mostly cell's scan digest is shared between the locked and
    # optimistic runs by construction (run_read_mostly_e6 raises on drift).
    "mixed_e2_optimistic": {
        "completed": 250,
        "aborted": 0,
        "blocked_txns": 2,
        "total_blocks": 2,
        "rx_backoffs": 1,
        "makespan": 58.128459,
        "record_count": 929,
        "lock_requests": 1454,
        "optimistic_searches": 147,
        "optimistic_scans": 33,
        "optimistic_restarts": 0,
        "optimistic_downgrades": 1,
        "optimistic_validations": 783,
    },
    "read_mostly_e6": {
        "reads_found": 1500,
        "scan_digest": "93a659b9c5d9b301",
        "locked_lock_requests": 8572,
        "optimistic_lock_requests": 979,
        "lock_reduction": 8.76,
        "locked_makespan": 60.024248,
        "optimistic_makespan": 60.054248,
        "optimistic_searches": 1500,
        "optimistic_scans": 12,
        "optimistic_restarts": 4,
        "optimistic_downgrades": 9,
        "optimistic_validations": 6131,
    },
    # Placement policies (added with BENCH_5.json): the same tree
    # reorganized under key_order / veb / none — veb must beat key_order
    # on cold descents while every scan-facing value stays identical.
    "placement_policies": {
        "record_count": 6000,
        "lookups": 400,
        "scan_digest": "4dcbebbe7b63a0a1",
        "descent_reduction": 1.141,
        "key_order_leaf_layout": "51a75f2e60667d2f",
        "key_order_descent_cost": 20000.0,
        "key_order_descent_sequential": 0,
        "key_order_scan_cost": 621.0,
        "key_order_pass2_ops": 609,
        "key_order_internal_pages": 112,
        "key_order_internal_span": 112,
        "veb_leaf_layout": "51a75f2e60667d2f",
        "veb_descent_cost": 17525.0,
        "veb_descent_sequential": 275,
        "veb_scan_cost": 621.0,
        "veb_pass2_ops": 609,
        "veb_internal_pages": 112,
        "veb_internal_span": 112,
        "none_leaf_layout": "ca348f57003cfd67",
        "none_descent_cost": 20000.0,
        "none_descent_sequential": 0,
        "none_scan_cost": 2097.0,
        "none_pass2_ops": 0,
        "none_internal_pages": 112,
        "none_internal_span": 112,
    },
    # Gapped leaves + auto-reorg daemon (added with BENCH_6.json): the
    # gapped layout must keep absorbing the same churn stream with ~6.6x
    # fewer splits and identical contents, and the daemon cell must keep
    # firing the same metric-triggered reorgs with digest-identical trees.
    "churn_daemon": {
        "churn_records": 25000,
        "gapless_splits": 625,
        "gapped_splits": 95,
        "gapped_absorbed": 4846,
        "split_reduction": 6.58,
        "churn_digest": "020fac9d0d2c3600a9b684a391bf3bf8",
        "des_records": 4060,
        "des_digest": "315146e614119067b741a33e25355b44",
        "off_scan_cost": 761.0,
        "off_degradation": 2.219,
        "on_scan_cost": 362.0,
        "on_degradation": 1.055,
        "off_leaf_splits": 22,
        "on_absorbed": 960,
        "daemon_polls": 150,
        "daemon_reorgs": 18,
        "daemon_deferred_cooldown": 2,
    },
}


@pytest.fixture(scope="module")
def suite():
    return run_suite(repeats=1)


def test_covers_every_workload():
    assert set(SEED_CHECKS) == set(WORKLOADS)


@pytest.mark.parametrize("name", sorted(SEED_CHECKS))
def test_checks_byte_identical_to_seed(suite, name):
    assert suite[name]["checks"] == SEED_CHECKS[name]


def test_counters_present_and_consistent(suite):
    """The perf layer instrumented each workload (counters are collected
    per run by run_suite) and basic cross-counter arithmetic holds."""
    for name, result in suite.items():
        counters = result["counters"]
        assert counters["buffer_hits"] + counters["buffer_misses"] > 0, name
        assert counters["buffer_mru_hits"] <= counters["buffer_hits"], name
    e2 = suite["mixed_e2"]["counters"]
    assert e2["des_events"] > 0
    assert e2["lock_fast_grants"] > 0


def test_report_wall_clock(suite):
    banner("Hot-path harness — wall clock (not asserted)")
    for name, result in sorted(suite.items()):
        print(f"  {name:<12} {result['wall_s']:.4f}s")
