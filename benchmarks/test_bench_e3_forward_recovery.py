"""E3 — forward recovery vs. rollback: work preserved across crashes.

Paper section 8: "We introduce a new recovery method: forward recovery.
It will resume the work instead of aborting the work as a normal recovery
method will do.  This will make reorganization faster in case of system
failure.  [Smi90] treats each leaf page operation as a database
transaction, so it is rolled back if interrupted."

The sweep crashes pass 1 at k% of its log volume (k in {10..90}) and
recovers both ways:

* **forward** — the interrupted unit is finished from its logged prefix;
* **rollback** — the interrupted unit's moves are inverted ([Smi90]).

Reported: units completed at the crash, the fate of the in-flight unit,
and the records-moved work preserved vs. thrown away.
"""

import pytest

from repro.config import ReorgConfig
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.reorg.unit import UnitEngine
from repro.sim.crash import LogCrashInjector, count_completed_units, crash_recover
from repro.wal.records import ReorgMoveInRecord

from conftest import banner, degrade_uniform, make_db

N_RECORDS = 2500


def reorg_log_length():
    """Log appends a full pass 1 takes on this workload (calibration)."""
    db = make_db(internal_capacity=16)
    tree = degrade_uniform(db, N_RECORDS, 0.3)
    mark = db.log.last_lsn
    Reorganizer(db, tree, ReorgConfig()).run_pass1()
    return db.log.last_lsn - mark


def crash_pass1_at(crash_after):
    db = make_db(internal_capacity=16)
    tree = degrade_uniform(db, N_RECORDS, 0.3)
    reorg = Reorganizer(db, tree, ReorgConfig())
    crashed = False
    try:
        with LogCrashInjector(db.log, after_records=crash_after):
            reorg.run_pass1()
    except CrashPoint:
        crashed = True
    return db, crashed


def moved_records_in_flight(pending):
    """Records the interrupted unit had already moved when the crash hit."""
    return sum(
        len(r.keys)
        for r in pending.records
        if isinstance(r, ReorgMoveInRecord)
    )


def test_e3_crash_sweep(benchmark):
    banner("E3 — forward recovery vs rollback across crash points (section 5.1 / 8)")
    total = reorg_log_length()
    print(f"(pass 1 writes ~{total} log records on this workload)\n")
    print(
        f"{'crash@':>7} {'units done':>11} {'in-flight moved':>16} "
        f"{'forward keeps':>14} {'rollback keeps':>15}"
    )
    preserved_forward = 0
    preserved_rollback = 0
    for percent in range(10, 100, 10):
        crash_after = max(2, total * percent // 100)
        # Forward recovery.
        db_f, crashed = crash_pass1_at(crash_after)
        assert crashed
        done_before = count_completed_units(db_f.log)
        recovery_f = crash_recover(db_f)
        in_flight = (
            moved_records_in_flight(recovery_f.pending_unit)
            if recovery_f.pending_unit
            else 0
        )
        forward_keeps = in_flight
        if recovery_f.pending_unit is not None:
            UnitEngine(db_f, db_f.tree()).finish_unit(recovery_f.pending_unit)
        db_f.tree().validate()
        # Rollback (Smith policy) on an identical crash.
        db_r, _ = crash_pass1_at(crash_after)
        recovery_r = crash_recover(db_r)
        rollback_keeps = 0
        if recovery_r.pending_unit is not None:
            rolled = UnitEngine(db_r, db_r.tree()).rollback_unit(
                recovery_r.pending_unit
            )
            if not rolled:  # unit was past its commit point
                rollback_keeps = moved_records_in_flight(recovery_r.pending_unit)
        db_r.tree().validate()
        preserved_forward += forward_keeps
        preserved_rollback += rollback_keeps
        print(
            f"{percent:>6}% {done_before:>11} {in_flight:>16} "
            f"{forward_keeps:>14} {rollback_keeps:>15}"
        )
    print(
        f"\nin-flight records preserved across the sweep: "
        f"forward={preserved_forward}, rollback={preserved_rollback}"
    )
    # Forward recovery preserves all in-flight work; rollback discards it.
    assert preserved_forward > preserved_rollback
    benchmark.pedantic(
        lambda: crash_pass1_at(max(2, total // 2)), rounds=1, iterations=1
    )


def test_e3_forward_recovery_is_correct_at_every_point(benchmark):
    """Exhaustive fine sweep near the start of pass 1: the tree must be
    intact after forward recovery at *every* crash offset."""
    expected = None
    for crash_after in range(2, 40, 2):
        db, crashed = crash_pass1_at(crash_after)
        assert crashed
        recovery = crash_recover(db)
        if recovery.pending_unit is not None:
            UnitEngine(db, db.tree()).finish_unit(recovery.pending_unit)
        tree = db.tree()
        tree.validate()
        keys = [r.key for r in tree.items()]
        if expected is None:
            expected = keys
        assert keys == expected, crash_after
    benchmark.pedantic(lambda: crash_pass1_at(10), rounds=1, iterations=1)


def test_e3_recovery_log_overhead(benchmark):
    """Forward recovery adds only the records needed to *finish* the unit;
    rollback adds inverse-move records of comparable size — the win is the
    preserved work, not the log volume (section 8)."""
    total = reorg_log_length()
    db, _ = crash_pass1_at(max(2, total // 3))
    recovery = crash_recover(db)
    before = db.log.stats.records_appended
    if recovery.pending_unit is not None:
        UnitEngine(db, db.tree()).finish_unit(recovery.pending_unit)
    forward_records = db.log.stats.records_appended - before
    assert forward_records < 60
    benchmark(lambda: count_completed_units(db.log))
