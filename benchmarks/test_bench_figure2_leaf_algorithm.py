"""F2 — Figure 2: the main program for reorganizing the leaves.

Figure 2's loop::

    While(more leaves) {
        Find-free-space;
        If there is appropriate free space
            Copying-Switching;
        Else
            In-Place-Reorg;
    }
    Swapping_Moving;

This benchmark traces the decision the loop makes for every unit across
free-space regimes: plenty of well-placed empty pages (deletion-heavy
degradation frees pages early), no usable empty pages (random growth fills
the extent densely), and policy NONE (Find-free-space disabled).  It prints
the Copying-Switching vs. In-Place-Reorg split and the Swapping_Moving work
that follows.
"""

import pytest

from repro.config import FreeSpacePolicy, ReorgConfig
from repro.reorg.compact import LeafCompactor
from repro.reorg.swap import SwapMovePass
from repro.reorg.unit import UnitEngine

from conftest import banner, degrade_by_random_growth, degrade_uniform, make_db

N_RECORDS = 3000


def run_leaf_algorithm(build, policy):
    db = make_db()
    tree = build(db, N_RECORDS, 0.3)
    engine = UnitEngine(db, tree)
    config = ReorgConfig(target_fill=0.9, free_space_policy=policy)
    pass1 = LeafCompactor(db, tree, config, engine).run()
    pass2 = SwapMovePass(db, tree, engine).run()
    db.tree().validate()
    return pass1, pass2


SCENARIOS = [
    ("deletion-degraded", degrade_uniform, FreeSpacePolicy.PAPER),
    ("random-growth", degrade_by_random_growth, FreeSpacePolicy.PAPER),
    ("policy=NONE", degrade_uniform, FreeSpacePolicy.NONE),
]


def test_figure2_decision_trace(benchmark):
    banner("Figure 2 — leaf reorganization main loop (per-unit decisions)")
    print(
        f"{'scenario':<20} {'units':>6} {'copy-switch':>12} {'in-place':>9} "
        f"{'then swaps':>11} {'moves':>6}"
    )
    results = {}
    for label, build, policy in SCENARIOS:
        pass1, pass2 = run_leaf_algorithm(build, policy)
        results[label] = (pass1, pass2)
        print(
            f"{label:<20} {pass1.units:>6} {pass1.new_place_units:>12} "
            f"{pass1.in_place_units:>9} {pass2.swaps:>11} {pass2.moves:>6}"
        )

    # Deletion-heavy degradation leaves usable free pages, so the loop
    # prefers Copying-Switching; with the policy disabled everything is
    # In-Place-Reorg.
    deletion_p1, _ = results["deletion-degraded"]
    assert deletion_p1.new_place_units > 0
    none_p1, none_p2 = results["policy=NONE"]
    assert none_p1.new_place_units == 0
    assert none_p1.in_place_units == none_p1.units
    # Figure 2 invariant: every unit is exactly one of the two branches.
    for pass1, _ in results.values():
        assert pass1.units == pass1.new_place_units + pass1.in_place_units

    benchmark.pedantic(
        lambda: run_leaf_algorithm(degrade_uniform, FreeSpacePolicy.PAPER),
        rounds=1,
        iterations=1,
    )


def test_figure2_units_stay_within_one_base_page(benchmark):
    """Section 3: "each separate operation on the leaves involves only one
    base page" — checked against the logged BEGIN records."""
    from repro.wal.records import ReorgBeginRecord, ReorgUnitType

    db = make_db()
    tree = degrade_uniform(db, N_RECORDS, 0.3)
    LeafCompactor(db, tree, ReorgConfig(target_fill=0.9)).run()
    begins = [
        r for r in db.log.records_from(1) if isinstance(r, ReorgBeginRecord)
    ]
    assert begins
    for begin in begins:
        if begin.unit_type is ReorgUnitType.COMPACT:
            assert len(begin.base_pages) == 1
    benchmark(lambda: sum(1 for r in db.log.records_from(1)))
