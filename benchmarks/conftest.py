"""Shared builders and report plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (Table 1, the
figures, or a quantified section-8 claim) and prints the reproduced
rows/series under a banner, so `pytest benchmarks/ --benchmark-only -s`
doubles as the experiment report.  EXPERIMENTS.md records one captured run.
"""

import random

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.storage.page import Record


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_db(
    leaf_capacity=16,
    internal_capacity=8,
    leaf_extent_pages=2048,
    internal_extent_pages=512,
    buffer_pool_pages=512,
    careful_writing=True,
    side_pointers=None,
):
    from repro.config import SidePointerKind

    return Database(
        TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=internal_capacity,
            leaf_extent_pages=leaf_extent_pages,
            internal_extent_pages=internal_extent_pages,
            buffer_pool_pages=buffer_pool_pages,
            careful_writing=careful_writing,
            side_pointers=side_pointers or SidePointerKind.NONE,
        )
    )


def degrade_uniform(db, n_records, fill_after, *, seed=7, internal_fill=0.5,
                    name="primary"):
    """Bulk-load full, delete uniformly down to ``fill_after``."""
    tree = db.bulk_load_tree(
        [Record(k, "x" * 16) for k in range(n_records)],
        name=name,
        leaf_fill=1.0,
        internal_fill=internal_fill,
    )
    rng = random.Random(seed)
    for key in rng.sample(range(n_records), int(n_records * (1 - fill_after))):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    return tree


def degrade_by_random_growth(db, n_records, fill_after, *, seed=7,
                             name="primary"):
    """Grow by random insertion (splits scatter the leaves), then thin."""
    tree = db.create_tree(name)
    rng = random.Random(seed)
    keys = list(range(n_records))
    rng.shuffle(keys)
    for key in keys:
        tree.insert(Record(key, "x" * 16))
    for key in rng.sample(range(n_records), int(n_records * (1 - fill_after))):
        tree.delete(key)
    db.flush()
    db.checkpoint()
    return tree
