"""Ablation — the stable-point interval of pass 3 (section 7.3).

"The simplest way is to force all the new B+-tree internal pages to disk
after the new B+-tree has been built.  But this would require restarting
the whole process in case there is a system failure.  In order to improve
the efficiency, an optimization would be force write after a certain
number, say 5, of new pages has been built."

The ablation sweeps the interval N and measures both sides of the
trade-off:

* **overhead** — stable points taken and pages force-written during an
  uninterrupted pass 3;
* **crash rework** — after a crash at a fixed log offset, how many old base
  pages the restarted scan must re-read (the work rolled back to the last
  stable point).
"""

import pytest

from repro.config import ReorgConfig
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover

from conftest import banner, degrade_uniform, make_db

N_RECORDS = 5000
INTERVALS = [1, 2, 5, 10, 10_000]  # 10_000 ~ "force only at the end"


def prepared_db():
    db = make_db(internal_capacity=8, internal_extent_pages=1024)
    tree = degrade_uniform(db, N_RECORDS, 0.4)
    reorg = Reorganizer(db, tree, ReorgConfig())
    reorg.run_pass1()
    reorg.run_pass2()
    db.flush()
    db.checkpoint()
    return db


def uninterrupted(interval):
    db = prepared_db()
    writes_before = db.store.disk.stats.writes
    config = ReorgConfig(stable_point_interval=interval)
    pass3, _ = Reorganizer(db, db.tree(), config).run_pass3()
    db.tree().validate()
    return pass3, db.store.disk.stats.writes - writes_before


def crashed_and_resumed(interval, crash_after=60):
    db = prepared_db()
    config = ReorgConfig(stable_point_interval=interval)
    reorg = Reorganizer(db, db.tree(), config)
    crashed = False
    try:
        with LogCrashInjector(db.log, after_records=crash_after):
            reorg.run_pass3()
    except CrashPoint:
        crashed = True
    assert crashed
    recovery = crash_recover(db)
    fresh = Reorganizer(db, db.tree(), config)
    report = fresh.forward_recover(recovery)
    db.tree().validate()
    return report.pass3


def test_ablation_stable_point_interval(benchmark):
    banner("Ablation — pass-3 stable-point interval (section 7.3 trade-off)")
    print(
        f"{'interval':>9} | {'stable pts':>10} {'disk writes':>12} | "
        f"{'rework: pages rescanned':>24} {'orphans freed':>14}"
    )
    rows = {}
    for interval in INTERVALS:
        pass3, writes = uninterrupted(interval)
        resumed = crashed_and_resumed(interval)
        rows[interval] = (pass3, writes, resumed)
        print(
            f"{interval:>9} | {pass3.stable_points:>10} {writes:>12} | "
            f"{resumed.base_pages_read:>24} {resumed.orphans_freed:>14}"
        )
    # Tight intervals cost more stable points / writes ...
    assert rows[1][0].stable_points > rows[10][0].stable_points
    assert rows[1][1] >= rows[10_000][1]
    # ... but bound the crash rework: the restarted scan re-reads far less
    # with interval 1 than when forcing only at the end.
    assert rows[1][2].base_pages_read <= rows[10_000][2].base_pages_read
    assert rows[1][2].base_pages_read < rows[10_000][2].base_pages_read \
        or rows[10_000][2].base_pages_read == 0
    benchmark.pedantic(lambda: uninterrupted(5), rounds=1, iterations=1)


def test_ablation_all_intervals_recover_correctly(benchmark):
    """Whatever the interval, the post-crash result is identical."""
    expected = None
    for interval in (1, 5, 10_000):
        db = prepared_db()
        config = ReorgConfig(stable_point_interval=interval)
        reorg = Reorganizer(db, db.tree(), config)
        try:
            with LogCrashInjector(db.log, after_records=45):
                reorg.run_pass3()
        except CrashPoint:
            recovery = crash_recover(db)
            Reorganizer(db, db.tree(), config).forward_recover(recovery)
        tree = db.tree()
        tree.validate()
        keys = [r.key for r in tree.items()]
        if expected is None:
            expected = keys
        assert keys == expected, interval
    benchmark.pedantic(lambda: crashed_and_resumed(5), rounds=1, iterations=1)
