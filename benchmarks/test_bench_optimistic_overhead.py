"""BENCH check: the optimistic read path off costs nothing (ISSUE 6).

``optimistic_reads`` defaults off in :class:`repro.config.TreeConfig`, and
the flags-off reader dispatchers fall straight through to the locked
Table-1 protocol.  Two assertions against BENCH_3.json (the last BENCH
recorded before the optimistic path landed):

* **Identity** (machine-independent): the read-path-relevant workloads
  (``mixed_e2``, ``range_scan_e6``) reproduce their recorded perf counters
  and check values exactly.  Any always-on optimism — a version probe in
  the locked descent, a skipped lock, an extra validation fetch — shifts
  the lock-grant / buffer counters or the check values and fails here.
* **Wall clock** (generous noise bound): each workload stays within 2x of
  the slowest BENCH_3.json repeat — a tripwire for accidental flags-on
  work, not a precision benchmark.
"""

import json
from pathlib import Path

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench

BENCH_3 = json.loads(
    (Path(__file__).resolve().parent.parent / "BENCH_3.json").read_text()
)

WORKLOADS = ["mixed_e2", "range_scan_e6"]


@pytest.fixture(scope="module")
def flags_off_results():
    """The BENCH_3 read workloads run on current code with optimism off."""
    return run_suite(WORKLOADS, repeats=3)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_counters_identical_to_bench3(flags_off_results, workload):
    """The deterministic signature of the read paths is unchanged."""
    expected = BENCH_3["workloads"][workload]["counters"]
    assert flags_off_results[workload]["counters"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_checks_identical_to_bench3(flags_off_results, workload):
    expected = BENCH_3["workloads"][workload]["checks"]
    assert flags_off_results[workload]["checks"] == expected


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wall_clock_within_noise_of_bench3(flags_off_results, workload):
    recorded = BENCH_3["workloads"][workload]
    now = flags_off_results[workload]
    bound = 2.0 * max(recorded["wall_all_s"] or [recorded["wall_s"]])
    banner(f"Optimistic-off overhead — {workload}")
    print(
        f"  BENCH_3 best {recorded['wall_s']:.4f}s   "
        f"now {now['wall_s']:.4f}s   bound {bound:.4f}s"
    )
    assert now["wall_s"] <= bound, (
        f"flags-off {workload} took {now['wall_s']:.4f}s, over the "
        f"{bound:.4f}s noise bound vs BENCH_3.json — is the optimistic "
        f"read path accidentally on by default?"
    )


def test_read_mostly_headline_is_recorded():
    """BENCH_4.json carries the ISSUE 6 acceptance numbers: >= 5x fewer
    lock-manager requests on the read-mostly cell, with the optimistic
    scan digest byte-identical to the locked one (run_read_mostly_e6
    raises before returning checks if either clause fails)."""
    bench_4 = json.loads(
        (Path(__file__).resolve().parent.parent / "BENCH_4.json").read_text()
    )
    checks = bench_4["workloads"]["read_mostly_e6"]["checks"]
    assert checks["lock_reduction"] >= 5.0
    assert checks["optimistic_lock_requests"] < checks["locked_lock_requests"]
    assert checks["optimistic_searches"] > 0 and checks["optimistic_scans"] > 0
