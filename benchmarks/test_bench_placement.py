"""BENCH check: placement policies (ISSUE 9).

Runs the ``placement_policies`` workload at the CI smoke scale and asserts
the headline claims behind BENCH_5.json:

* the ``veb`` policy strictly reduces the cold-descent read cost vs the
  paper's ``key_order`` placement (and actually produces sequential
  parent-to-child hops, which key_order never does);
* range-scan digests — and the entire leaf layout for veb vs key_order —
  are byte-identical across all three policies, so the descent win costs
  nothing on the axis the paper optimizes;
* the ``none`` policy skips pass 2 and pays for it with a worse scan.

The workload itself raises on any violated invariant; the tests here pin
the numbers the report quotes and print them for the CI log.
"""

import pytest

from conftest import banner
from perf_harness import run_suite

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def placement():
    results = run_suite(["placement_policies"], repeats=2, profile="small")
    return results["placement_policies"]["checks"]


def test_veb_reduces_cold_descent_cost(placement):
    banner("Placement policies — cold-descent read cost")
    for policy in ("key_order", "veb", "none"):
        print(
            f"  {policy:>9}: descent {placement[f'{policy}_descent_cost']:8.1f}"
            f"   sequential {placement[f'{policy}_descent_sequential']:4d}"
            f"   scan {placement[f'{policy}_scan_cost']:7.1f}"
        )
    print(f"  veb reduction: {placement['descent_reduction']:.3f}x")
    assert placement["veb_descent_cost"] < placement["key_order_descent_cost"]
    assert placement["descent_reduction"] > 1.0
    assert placement["veb_descent_sequential"] > 0
    assert placement["key_order_descent_sequential"] == 0


def test_leaf_layout_and_scans_unchanged(placement):
    assert placement["veb_leaf_layout"] == placement["key_order_leaf_layout"]
    assert placement["veb_scan_cost"] == placement["key_order_scan_cost"]
    # One shared digest in checks == all three policies agreed (the
    # workload raises otherwise).
    assert placement["scan_digest"]


def test_none_policy_skips_pass2_and_pays_on_scans(placement):
    assert placement["none_pass2_ops"] == 0
    assert placement["veb_pass2_ops"] > 0
    assert placement["none_scan_cost"] > placement["key_order_scan_cost"]


def test_veb_window_is_contiguous(placement):
    assert placement["veb_internal_span"] == placement["veb_internal_pages"]
