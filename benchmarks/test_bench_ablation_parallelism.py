"""Ablation — parallel compaction (the paper's future work, section 9).

"Future work includes ... exploration of parallelism in reorganization."

K workers compact disjoint contiguous base-page partitions concurrently.
The sweep measures the speedup of pass 1 (with per-unit record-movement
time) and the price paid in pass-2 placement work: each worker keeps its
own L, so new-place outputs interleave across partitions and more leaves
need moving afterwards — the parallelism-vs-placement trade-off.
"""

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.parallel import build_parallel_pass1
from repro.reorg.swap import SwapMovePass
from repro.reorg.unit import UnitEngine
from repro.sim.workload import build_sparse_tree
from repro.txn.scheduler import Scheduler

from conftest import banner

WORKERS = [1, 2, 4, 8]
N_RECORDS = 3000


def make_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=8,
            leaf_extent_pages=2048,
            internal_extent_pages=512,
            buffer_pool_pages=256,
        )
    )
    build_sparse_tree(db, n_records=N_RECORDS, fill_after=0.3)
    db.flush()
    db.checkpoint()
    return db


def run_with_workers(n_workers):
    db = make_db()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocols = build_parallel_pass1(
        db, "primary", ReorgConfig(), n_workers,
        unit_pause=0.01, op_duration=0.2,
    )
    for i, protocol in enumerate(protocols):
        sched.spawn(protocol.pass1(), name=f"w{i}", is_reorganizer=True)
    sched.run()
    assert sched.failed == []
    units = sum(result["units"] for _, result in sched.completed)
    pass2 = SwapMovePass(db, db.tree(), UnitEngine(db, db.tree())).run()
    db.tree().validate()
    return sched.now, units, pass2


def test_ablation_parallel_workers(benchmark):
    banner("Ablation — parallel pass 1 (section 9 future work)")
    print(
        f"{'workers':>8} {'pass1 time':>11} {'speedup':>8} {'units':>6} "
        f"{'pass2 swaps':>12} {'pass2 moves':>12}"
    )
    rows = {}
    for n in WORKERS:
        elapsed, units, pass2 = run_with_workers(n)
        rows[n] = (elapsed, units, pass2)
        base = rows[WORKERS[0]][0]
        print(
            f"{n:>8} {elapsed:>11.1f} {base / elapsed:>7.1f}x {units:>6} "
            f"{pass2.swaps:>12} {pass2.moves:>12}"
        )
    # Speedup is real and grows with workers ...
    assert rows[4][0] < rows[1][0] * 0.6
    assert rows[8][0] <= rows[4][0] * 1.05
    # ... the same compaction work gets done ...
    assert abs(rows[4][1] - rows[1][1]) <= max(4, rows[1][1] // 10)
    # ... and correctness is never traded (validate() ran inside).
    benchmark.pedantic(lambda: run_with_workers(2), rounds=1, iterations=1)
