"""E2 — concurrency during reorganization: paper protocol vs. [Smi90].

Paper section 8: "This increased concurrency is the most important
advantage our method has over [Smi90]."  The paper's method RX-locks only
the unit's leaves while moving records and X-locks the base page only for
the short key-posting step; [Smi90] "prevents user transactions from
accessing the entire file" for every block operation.

The experiment runs the same deterministic workload of readers/updaters
(a) with no reorganizer, (b) with the paper's reorganizer, and (c) with the
Smith-style baseline, and reports blocked transactions, waits and latency.
"""

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.workload import WorkloadConfig

from conftest import banner


def setup(n_transactions=250, zipf=0.0, seed=11):
    return ExperimentSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
            buffer_pool_pages=512,
        ),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=n_transactions,
            key_space=3000,
            mean_interarrival=0.25,
            zipf_theta=zipf,
            seed=seed,
        ),
        n_records=3000,
        fill_after=0.3,
        op_duration=0.3,
    )


def run_cell(mode, **kwargs):
    db, metrics = run_concurrent_experiment(setup(**kwargs), reorganizer=mode)
    db.tree().validate()
    return metrics


def test_e2_blocked_transactions(benchmark):
    banner("E2 — user impact of on-line reorganization (section 8 vs [Smi90])")
    rows = {}
    print(
        f"{'reorganizer':<10} {'blocked':>8} {'rx-backoff':>11} "
        f"{'mean wait':>10} {'p95 wait':>9} {'mean lat':>9} {'reorg time':>11}"
    )
    for mode in ("none", "paper", "smith90"):
        m = run_cell(mode)
        rows[mode] = m
        print(
            f"{mode:<10} {m.blocked_txns:>8} {m.rx_backoffs:>11} "
            f"{m.mean_wait:>10.3f} {m.p95_wait:>9.3f} "
            f"{m.mean_latency:>9.3f} {m.reorg_elapsed:>11.1f}"
        )
    paper, smith, none = rows["paper"], rows["smith90"], rows["none"]
    # All transactions complete in every configuration.
    for m in rows.values():
        assert m.aborted == 0
        assert m.completed == m.user_txns
    # The paper's protocol blocks a small fraction; Smith blocks most.
    assert paper.blocked_txns < smith.blocked_txns / 5
    assert paper.mean_wait < smith.mean_wait / 5
    assert paper.p95_wait <= smith.p95_wait
    # And the paper's method stays close to the no-reorganizer baseline.
    assert paper.mean_latency < none.mean_latency * 1.25
    benchmark.pedantic(lambda: run_cell("paper"), rounds=1, iterations=1)


def test_e2_skewed_access(benchmark):
    """Zipf-skewed access concentrates the collision window; the ordering
    between the methods must survive."""
    banner("E2b — same comparison under Zipf(1.0) skew")
    paper = run_cell("paper", zipf=1.0)
    smith = run_cell("smith90", zipf=1.0)
    print(
        f"paper:   blocked={paper.blocked_txns} mean_wait={paper.mean_wait:.3f}"
    )
    print(
        f"smith90: blocked={smith.blocked_txns} mean_wait={smith.mean_wait:.3f}"
    )
    assert paper.blocked_txns < smith.blocked_txns
    assert paper.mean_wait < smith.mean_wait
    benchmark.pedantic(lambda: run_cell("paper", zipf=1.0), rounds=1, iterations=1)


def test_e2_reorganizer_finishes_despite_contention(benchmark):
    """The background reorganizer completes and the tree ends healthy."""
    from repro.btree.stats import collect_stats

    db, metrics = run_concurrent_experiment(setup(), reorganizer="paper")
    stats = collect_stats(db.tree())
    assert metrics.reorg_elapsed > 0
    assert stats.leaf_fill > 0.55
    assert not db.pass3.reorg_bit
    benchmark.pedantic(
        lambda: run_concurrent_experiment(setup(n_transactions=80),
                                          reorganizer="paper"),
        rounds=1,
        iterations=1,
    )
